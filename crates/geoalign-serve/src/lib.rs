//! **geoalign-serve** — a batch crosswalk HTTP service over the
//! prepare/apply split of `geoalign-core`.
//!
//! The serving thesis mirrors the paper's workload (§4.3): the expensive
//! part of a crosswalk — the references' Gram matrix and disaggregation
//! state — depends only on the *reference set*, while each query
//! contributes only a cheap right-hand side. So the service snapshots
//! each distinct (source system, target system, reference set) into a
//! [`geoalign_core::PreparedCrosswalk`], caches it in a sharded
//! [`geoalign_core::CrosswalkStore`], and answers `/crosswalk` batches by
//! applying the snapshot to every attribute vector in the request.
//!
//! Everything is `std`-only: a [`std::net::TcpListener`] accept loop, a
//! fixed worker thread pool, a hand-rolled HTTP/1.1 subset ([`http`]) and
//! a minimal JSON codec ([`json`]). No async runtime, no external
//! dependencies — the handlers are CPU-bound sparse algebra, so threads
//! are the right concurrency primitive and the binary stays small.
//!
//! Connections are persistent: a worker serves HTTP/1.1 requests on one
//! socket until the peer asks for `Connection: close`, the idle timeout
//! ([`ServerConfig::idle_timeout`]) expires, or the per-connection
//! request cap ([`ServerConfig::max_requests_per_conn`]) is reached.
//! Because a keep-alive connection pins its worker, admission is bounded
//! instead of the accept loop: at most [`ServerConfig::max_connections`]
//! connections queue for the pool, and everything beyond that is shed
//! with `503` + `Retry-After`. Hostile input is cut off early — request
//! heads over [`http::MAX_HEAD_BYTES`] get `431`, JSON nested deeper
//! than [`json::MAX_DEPTH`] gets `400`, and a peer that stalls
//! mid-request gets `408`. See DESIGN.md §10.
//!
//! The service is observable through `geoalign-obs`: every request runs
//! under a trace scope keyed by its `X-Trace-Id` header (generated when
//! absent, always echoed back), finished spans go into the optional
//! JSON-lines access log ([`ServerConfig::access_log`]), and `/metrics`
//! serves both the legacy JSON shape and Prometheus text exposition
//! (`?format=prometheus`). See DESIGN.md §8.
//!
//! # Quick start
//!
//! ```no_run
//! use geoalign_serve::{Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:8077", ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! // POST /systems, /references, then /crosswalk — see the module docs
//! // of `router` for the request shapes.
//! # server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod metrics;
pub mod router;
pub mod server;
pub mod slo;
pub mod store;

pub use http::{Request, Response};
pub use json::Json;
pub use metrics::Metrics;
pub use router::route;
pub use server::{Server, ServerConfig};
pub use store::AppState;
