//! **geoalign-serve** — a batch crosswalk HTTP service over the
//! prepare/apply split of `geoalign-core`.
//!
//! The serving thesis mirrors the paper's workload (§4.3): the expensive
//! part of a crosswalk — the references' Gram matrix and disaggregation
//! state — depends only on the *reference set*, while each query
//! contributes only a cheap right-hand side. So the service snapshots
//! each distinct (source system, target system, reference set) into a
//! [`geoalign_core::PreparedCrosswalk`], caches it in a sharded
//! [`geoalign_core::CrosswalkStore`], and answers `/crosswalk` batches by
//! applying the snapshot to every attribute vector in the request.
//!
//! Everything is `std`-only: a single-threaded readiness [`reactor`]
//! (`epoll(7)`/`poll(2)` over `O_NONBLOCK` sockets, through a local FFI
//! shim), a fixed worker thread pool for the CPU-bound handlers, a
//! hand-rolled incremental HTTP/1.1 subset ([`http`]) and a minimal
//! JSON codec ([`json`]). No async runtime, no external dependencies —
//! the handlers are sparse algebra, so pool threads are the right
//! compute primitive, while connections are multiplexed so an idle
//! socket costs bytes, not a thread.
//!
//! Connections are persistent: the reactor serves HTTP/1.1 requests on
//! one socket until the peer asks for `Connection: close`, the idle
//! timeout ([`ServerConfig::idle_timeout`]) expires, or the
//! per-connection request cap ([`ServerConfig::max_requests_per_conn`])
//! is reached. [`ServerConfig::workers`] bounds *compute* only; at most
//! `workers + max_connections` sockets are admitted, and everything
//! beyond that is shed with `503` + `Retry-After`. Hostile input is cut
//! off early — request heads over [`http::MAX_HEAD_BYTES`] get `431`,
//! JSON nested deeper than [`json::MAX_DEPTH`] gets `400`, and a peer
//! that stalls mid-request gets `408`. See DESIGN.md §10 and §14.
//!
//! The service is observable through `geoalign-obs`: every request runs
//! under a trace scope keyed by its `X-Trace-Id` header (generated when
//! absent, always echoed back), finished spans go into the optional
//! JSON-lines access log ([`ServerConfig::access_log`]), and `/metrics`
//! serves both the legacy JSON shape and Prometheus text exposition
//! (`?format=prometheus`). See DESIGN.md §8.
//!
//! # Quick start
//!
//! ```no_run
//! use geoalign_serve::{Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:8077", ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! // POST /systems, /references, then /crosswalk — see the module docs
//! // of `router` for the request shapes.
//! # server.shutdown();
//! ```

#![warn(missing_docs)]

pub(crate) mod conn;
pub mod http;
pub mod json;
pub mod metrics;
pub mod reactor;
pub mod router;
pub mod server;
pub mod slo;
pub mod store;

pub use http::{Request, Response};
pub use json::Json;
pub use metrics::Metrics;
pub use reactor::EventLoopKind;
pub use router::route;
pub use server::{Server, ServerConfig};
pub use store::AppState;
