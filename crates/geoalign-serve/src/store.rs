//! Shared service state: the registry of unit systems and references
//! (an [`IntegrationPipeline`] behind a `RwLock`) plus the prepared-
//! crosswalk cache and the metrics. Registration takes the write lock;
//! the `/crosswalk` hot path only ever takes the read lock, and all
//! cache and metrics traffic is lock-free or sharded.

use crate::metrics::Metrics;
use geoalign_agg::AggState;
use geoalign_core::{
    persist, CoreError, CrosswalkKey, CrosswalkStore, DurableBacking, IntegrationPipeline,
    PreparedCrosswalk, ReferenceData,
};
use geoalign_obs::SpanRecord;
use geoalign_partition::DisaggregationMatrix;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// How many slowest requests `/debug/slow` retains.
pub const SLOW_RING_CAPACITY: usize = 16;

/// One retained slow request: the access-log facts plus the full span
/// records, so `/debug/slow` can render the span tree.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request's trace ID.
    pub trace_id: String,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Total wall time in microseconds.
    pub duration_micros: u64,
    /// Every span finished while routing (ids/parents intact).
    pub spans: Vec<SpanRecord>,
}

/// The k-slowest-requests ring behind `/debug/slow`: kept sorted by
/// duration descending, evicting the fastest entry once full.
#[derive(Debug, Default)]
struct SlowRing {
    entries: Vec<SlowEntry>,
}

impl SlowRing {
    fn record(&mut self, entry: SlowEntry) {
        if self.entries.len() >= SLOW_RING_CAPACITY {
            let min = self.entries.last().map(|e| e.duration_micros).unwrap_or(0);
            if entry.duration_micros <= min {
                return;
            }
            self.entries.pop();
        }
        let at = self
            .entries
            .partition_point(|e| e.duration_micros >= entry.duration_micros);
        self.entries.insert(at, entry);
    }
}

/// Default number of prepared crosswalks the cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// One streaming reference fed by `/ingest`: its durable rollup key, its
/// position within the pair's reference list, and the mergeable state
/// every batch so far has been folded into.
#[derive(Debug)]
struct IngestSlot {
    agg_index: u64,
    position: usize,
    state: AggState,
}

/// All streaming references, keyed by `(source, target, attribute)`.
#[derive(Debug, Default)]
struct IngestRegistry {
    slots: HashMap<(String, String, String), IngestSlot>,
    /// Next `agg/<nnnnnnnn>` key index — one past the highest replayed.
    next_index: u64,
}

/// What one `/ingest` batch did, for the response body.
#[derive(Debug)]
pub struct IngestOutcome {
    /// Points folded into the state this batch.
    pub absorbed: u64,
    /// Points skipped this batch (unknown unit ids).
    pub skipped: u64,
    /// Points folded across every batch so far.
    pub total_points: u64,
    /// Points skipped across every batch so far.
    pub total_skipped: u64,
    /// The streaming reference's position within the pair.
    pub position: usize,
    /// References registered for the pair after the fold.
    pub references_for_pair: usize,
    /// Whether a cached prepared crosswalk was refreshed in place through
    /// the incremental delta path (vs left for the next `/crosswalk`).
    pub incremental: bool,
    /// Design-matrix rows the incremental update touched.
    pub touched_rows: usize,
}

/// Everything the worker threads share.
pub struct AppState {
    pipeline: RwLock<IntegrationPipeline>,
    /// The prepared-crosswalk cache.
    pub cache: CrosswalkStore,
    /// Service metrics.
    pub metrics: Metrics,
    started: Instant,
    access_log: Mutex<Option<Box<dyn Write + Send>>>,
    /// The durable tier (`serve --data-dir`): registrations are written
    /// through synchronously, prepared crosswalks behind the cache.
    durable: Option<Arc<DurableBacking>>,
    /// Next `ref/<nnnnnnnn>` key index — one past the highest replayed.
    next_ref_index: AtomicU64,
    /// Streaming-ingest references. Lock order: pipeline write lock
    /// first, then this (only [`Self::ingest`] takes both).
    ingest: Mutex<IngestRegistry>,
    /// Whether `/debug/*` introspection routes answer (requires the
    /// `--debug-endpoints` flag; everything 404s otherwise).
    debug_endpoints: AtomicBool,
    /// The slowest requests seen so far, for `/debug/slow`. Only fed
    /// while debug endpoints are enabled.
    slow: Mutex<SlowRing>,
    /// The request pool's occupancy counters, set by the server at bind
    /// time; `/debug/threads` reads them.
    pool_stats: Mutex<Option<Arc<geoalign_exec::PoolStats>>>,
}

impl std::fmt::Debug for AppState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppState")
            .field("cache", &self.cache)
            .field("metrics", &self.metrics)
            .field("uptime_seconds", &self.uptime().as_secs())
            .finish_non_exhaustive()
    }
}

impl AppState {
    /// Fresh state with an empty pipeline and a cache of `capacity`.
    pub fn new(cache_capacity: usize) -> Arc<Self> {
        Self::with_pipeline(IntegrationPipeline::new(), cache_capacity)
    }

    /// State wrapping an already-populated pipeline (used by tests and by
    /// embedders that register data programmatically).
    pub fn with_pipeline(pipeline: IntegrationPipeline, cache_capacity: usize) -> Arc<Self> {
        Arc::new(AppState {
            pipeline: RwLock::new(pipeline),
            cache: CrosswalkStore::new(cache_capacity),
            metrics: Metrics::default(),
            started: Instant::now(),
            access_log: Mutex::new(None),
            durable: None,
            next_ref_index: AtomicU64::new(0),
            ingest: Mutex::new(IngestRegistry::default()),
            debug_endpoints: AtomicBool::new(false),
            slow: Mutex::new(SlowRing::default()),
            pool_stats: Mutex::new(None),
        })
    }

    /// State backed by the durable store at `data_dir` (`serve
    /// --data-dir`). Opens (or creates) the store — running its recovery:
    /// snapshot load, WAL replay, torn-tail repair — then warm-starts the
    /// registry by replaying every persisted unit system and reference
    /// registration into a fresh pipeline. Prepared crosswalks revive
    /// lazily through the cache's read-through, so the first `/crosswalk`
    /// after a restart answers from disk without re-running the solver.
    pub fn open_durable(
        data_dir: impl AsRef<std::path::Path>,
        cache_capacity: usize,
    ) -> Result<Arc<Self>, CoreError> {
        let backing = Arc::new(DurableBacking::open(data_dir)?);
        let mut pipeline = IntegrationPipeline::new();

        // Replay systems first: references validate against them.
        for (key, bytes) in backing.store().iter_prefix(persist::SYSTEM_PREFIX) {
            let Some(name) = persist::system_name_from_key(&key) else {
                continue;
            };
            let units = persist::decode_unit_system(&bytes)?;
            pipeline.register_system(name, units);
        }
        // `ref/<nnnnnnnn>` keys sort in registration order, so the warm
        // pipeline sees the same sequence the cold one did.
        let mut next_ref_index = 0u64;
        for (key, bytes) in backing.store().iter_prefix(persist::REFERENCE_PREFIX) {
            let (source, target, data) = persist::decode_reference(&bytes)?;
            pipeline.register_reference(&source, &target, data)?;
            if let Some(idx) = key
                .strip_prefix(persist::REFERENCE_PREFIX)
                .and_then(|s| s.parse::<u64>().ok())
            {
                next_ref_index = next_ref_index.max(idx + 1);
            }
        }
        // `agg/<nnnnnnnn>` keys sort in first-ingest order. Streaming
        // references append after the replayed static registrations, so
        // warm positions match the cold server's as long as a pair's
        // static references are all registered before its first ingest
        // (the supported ordering; DESIGN.md §12).
        let mut ingest = IngestRegistry::default();
        for (key, bytes) in backing.store().iter_prefix(persist::AGG_PREFIX) {
            let (source, target, state) = persist::decode_agg_rollup(&bytes)?;
            let dm = DisaggregationMatrix::from_state(&state).map_err(CoreError::from)?;
            let reference = ReferenceData::from_dm(state.attribute(), dm)?;
            let position = pipeline.reference_count(&source, &target);
            pipeline.register_reference(&source, &target, reference)?;
            let agg_index = key
                .strip_prefix(persist::AGG_PREFIX)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(ingest.next_index);
            ingest.next_index = ingest.next_index.max(agg_index + 1);
            let attribute = state.attribute().to_owned();
            ingest.slots.insert(
                (source, target, attribute),
                IngestSlot {
                    agg_index,
                    position,
                    state,
                },
            );
        }

        Ok(Arc::new(AppState {
            pipeline: RwLock::new(pipeline),
            cache: CrosswalkStore::with_backing(cache_capacity, Arc::clone(&backing)),
            metrics: Metrics::default(),
            started: Instant::now(),
            access_log: Mutex::new(None),
            durable: Some(backing),
            next_ref_index: AtomicU64::new(next_ref_index),
            ingest: Mutex::new(ingest),
            debug_endpoints: AtomicBool::new(false),
            slow: Mutex::new(SlowRing::default()),
            pool_stats: Mutex::new(None),
        }))
    }

    /// Whether `/debug/*` routes answer; off by default.
    pub fn debug_endpoints_enabled(&self) -> bool {
        self.debug_endpoints.load(Ordering::Relaxed)
    }

    /// Turns `/debug/*` routes on or off (the server sets this from
    /// `ServerConfig::debug_endpoints` at bind time).
    pub fn set_debug_endpoints(&self, enabled: bool) {
        self.debug_endpoints.store(enabled, Ordering::Relaxed);
    }

    /// Offers a finished request to the slow-request ring (kept only if
    /// it ranks among the slowest seen).
    pub fn record_slow(&self, entry: SlowEntry) {
        self.slow
            .lock()
            .expect("slow ring lock poisoned")
            .record(entry);
    }

    /// The current slow-request ring, slowest first.
    pub fn slow_requests(&self) -> Vec<SlowEntry> {
        self.slow
            .lock()
            .expect("slow ring lock poisoned")
            .entries
            .clone()
    }

    /// Publishes the request pool's counters for `/debug/threads`.
    pub fn set_pool_stats(&self, stats: Arc<geoalign_exec::PoolStats>) {
        *self.pool_stats.lock().expect("pool stats lock poisoned") = Some(stats);
    }

    /// The request pool's counters, when a server is attached.
    pub fn pool_stats(&self) -> Option<geoalign_exec::PoolStatsSnapshot> {
        self.pool_stats
            .lock()
            .expect("pool stats lock poisoned")
            .as_ref()
            .map(|s| s.snapshot())
    }

    /// The durable tier, when the server was started with `--data-dir`.
    pub fn durable(&self) -> Option<&Arc<DurableBacking>> {
        self.durable.as_ref()
    }

    /// Writes a unit-system registration through to the durable store.
    /// Registration is rare and losing one would orphan every reference
    /// on it, so this is a synchronous durable append (unlike prepared
    /// crosswalks, which are persisted behind the response).
    pub fn persist_system(&self, name: &str, unit_ids: &[String]) -> Result<(), CoreError> {
        let Some(backing) = &self.durable else {
            return Ok(());
        };
        backing
            .store()
            .put(
                &persist::system_key(name),
                persist::encode_unit_system(unit_ids),
            )
            .map_err(|e| CoreError::Persist {
                detail: e.to_string(),
            })?;
        Ok(())
    }

    /// Writes a reference registration through to the durable store under
    /// the next `ref/<nnnnnnnn>` key. Synchronous, like
    /// [`Self::persist_system`]. Callers that can race (the `/references`
    /// handler) must invoke this while still holding the pipeline write
    /// lock, so the persisted index order matches registration order and
    /// warm-start replay sees the same sequence the cold pipeline did.
    pub fn persist_reference(
        &self,
        source: &str,
        target: &str,
        reference: &ReferenceData,
    ) -> Result<(), CoreError> {
        let Some(backing) = &self.durable else {
            return Ok(());
        };
        let index = self.next_ref_index.fetch_add(1, Ordering::SeqCst);
        backing
            .store()
            .put(
                &persist::reference_key(index),
                persist::encode_reference(source, target, reference),
            )
            .map_err(|e| CoreError::Persist {
                detail: e.to_string(),
            })?;
        Ok(())
    }

    /// Writes a streaming-ingest rollup through to the durable store
    /// under its assigned `agg/<nnnnnnnn>` key. Each fold overwrites the
    /// previous rollup for the slot — the mergeable state subsumes every
    /// batch — so warm-start replay reads one record per streaming
    /// reference. Synchronous, like [`Self::persist_reference`], and for
    /// the same reason called under the pipeline write lock.
    fn persist_agg_rollup(
        &self,
        index: u64,
        source: &str,
        target: &str,
        state: &AggState,
    ) -> Result<(), CoreError> {
        let Some(backing) = &self.durable else {
            return Ok(());
        };
        backing
            .store()
            .put(
                &persist::agg_key(index),
                persist::encode_agg_rollup(source, target, state),
            )
            .map_err(|e| CoreError::Persist {
                detail: e.to_string(),
            })?;
        Ok(())
    }

    /// Folds one `/ingest` batch of pre-located points into the streaming
    /// reference for `(source, target, attribute)`.
    ///
    /// The first batch for a key registers a new reference on the pair;
    /// later batches merge into the slot's [`AggState`] and replace that
    /// reference in place, so `/crosswalk` always answers over the full
    /// point stream seen so far — byte-identical to a cold server fed the
    /// concatenated points in one shot, because the state's merge is
    /// split-invariant and the prepared-crosswalk delta path is bitwise
    /// exact. A cached prepared crosswalk for the pair is refreshed
    /// through [`PreparedCrosswalk::with_reference_updated`] (re-solving
    /// only the touched design rows) and re-keyed; the stale cache entry
    /// is invalidated either way. The updated rollup is written through
    /// to the durable store before the fold commits.
    ///
    /// `points` are `(source unit, target unit, weight)` index triples
    /// already resolved and validated by the caller; `unknown` counts the
    /// batch's points that named unknown units (recorded as skipped,
    /// mirroring `OutsidePolicy::Skip`).
    pub fn ingest(
        &self,
        source: &str,
        target: &str,
        attribute: &str,
        points: &[(usize, usize, f64)],
        unknown: u64,
    ) -> Result<IngestOutcome, CoreError> {
        let mut pipeline = self.pipeline_mut();
        let n_source = pipeline.unit_ids(source)?.len();
        let n_target = pipeline.unit_ids(target)?.len();

        // The pair's cache key before the fold — the entry to refresh
        // incrementally and then invalidate.
        let old_key = {
            let refs: Vec<&ReferenceData> = pipeline.references(source, target).iter().collect();
            (!refs.is_empty()).then(|| CrosswalkKey::new(source, target, &refs))
        };

        let mut batch = AggState::new(attribute, n_source, n_target)
            .map_err(geoalign_partition::PartitionError::from)?;
        for &(si, ti, w) in points {
            batch
                .absorb(si, ti, w)
                .map_err(geoalign_partition::PartitionError::from)?;
        }
        for _ in 0..unknown {
            batch.record_skipped();
        }
        let absorbed = batch.count();

        let mut registry = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let slot_key = (source.to_owned(), target.to_owned(), attribute.to_owned());
        let (state, position, agg_index, appended) = match registry.slots.get(&slot_key) {
            Some(slot) => {
                let mut state = slot.state.clone();
                state
                    .merge(&batch)
                    .map_err(geoalign_partition::PartitionError::from)?;
                (state, slot.position, slot.agg_index, false)
            }
            None => (
                batch,
                pipeline.reference_count(source, target),
                registry.next_index,
                true,
            ),
        };
        let total_points = state.count();
        let total_skipped = state.skipped();

        let dm = DisaggregationMatrix::from_state(&state)?;
        let reference = ReferenceData::from_dm(attribute, dm)?;
        if appended {
            pipeline.register_reference(source, target, reference.clone())?;
        } else {
            pipeline.replace_reference(source, target, position, reference.clone())?;
        }
        // Durable write under both locks, so rollup state on disk never
        // runs ahead of (or falls behind) the registered reference.
        self.persist_agg_rollup(agg_index, source, target, &state)?;
        if appended {
            registry.next_index += 1;
        }
        registry.slots.insert(
            slot_key,
            IngestSlot {
                agg_index,
                position,
                state,
            },
        );
        drop(registry);

        let references_for_pair = pipeline.reference_count(source, target);
        let mut touched_rows = 0usize;
        let mut incremental = false;
        if let Some(old) = &old_key {
            if let Some(prepared) = self.cache.get(old) {
                let (updated, touched) = prepared.with_reference_updated(position, reference)?;
                let refs: Vec<&ReferenceData> =
                    pipeline.references(source, target).iter().collect();
                let new_key = CrosswalkKey::new(source, target, &refs);
                self.cache.insert(new_key, Arc::new(updated));
                touched_rows = touched;
                incremental = true;
            }
            // Only the folded pair's entry is touched; prepared
            // crosswalks for other pairs stay cached.
            self.cache.invalidate(old);
        }
        self.metrics.ingest_touched_rows.add(touched_rows as u64);

        Ok(IngestOutcome {
            absorbed,
            skipped: unknown,
            total_points,
            total_skipped,
            position,
            references_for_pair,
            incremental,
            touched_rows,
        })
    }

    /// Time since this state was created (the server's uptime).
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Installs an access-log sink; each finished request appends one
    /// JSON line. Passing a fresh sink replaces the previous one.
    pub fn set_access_log(&self, sink: Box<dyn Write + Send>) {
        *self.access_log.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    }

    /// Whether an access-log sink is installed.
    pub fn access_log_enabled(&self) -> bool {
        self.access_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Appends one line to the access log, if a sink is installed. Write
    /// failures are swallowed — logging must never break serving.
    pub fn log_access(&self, line: &str) {
        let mut guard = self.access_log.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = guard.as_mut() {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }

    /// Read access to the registry.
    pub fn pipeline(&self) -> RwLockReadGuard<'_, IntegrationPipeline> {
        self.pipeline.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write access to the registry (registration endpoints only).
    pub fn pipeline_mut(&self) -> RwLockWriteGuard<'_, IntegrationPipeline> {
        self.pipeline.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The prepared crosswalk for `source → target` over the references
    /// currently registered for that pair — cached by content
    /// fingerprint, so re-registered references can never serve a stale
    /// snapshot. Returns the snapshot and whether it was a cache hit;
    /// cache misses feed the prepare-latency histogram.
    pub fn prepared_crosswalk(
        &self,
        source: &str,
        target: &str,
    ) -> Result<(Arc<PreparedCrosswalk>, bool), CoreError> {
        let pipeline = self.pipeline();
        let refs: Vec<&ReferenceData> = pipeline.references(source, target).iter().collect();
        if refs.is_empty() {
            return Err(CoreError::UnknownReference {
                name: format!("crosswalk {source} -> {target}"),
            });
        }
        let key = CrosswalkKey::new(source, target, &refs);
        let aligner = *pipeline.aligner();
        let t0 = Instant::now();
        let (prepared, hit) = self
            .cache
            .get_or_insert_with(&key, || aligner.prepare(&refs))?;
        if !hit {
            self.metrics.prepare_latency.record(t0.elapsed());
        }
        Ok((prepared, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_partition::DisaggregationMatrix;

    fn populated() -> Arc<AppState> {
        let state = AppState::new(8);
        {
            let mut p = state.pipeline_mut();
            p.register_system("zip", ["z1", "z2"]);
            p.register_system("county", ["A", "B"]);
            let dm = DisaggregationMatrix::from_triples(
                "pop",
                2,
                2,
                [(0, 0, 10.0), (0, 1, 30.0), (1, 1, 5.0)],
            )
            .unwrap();
            p.register_reference("zip", "county", ReferenceData::from_dm("pop", dm).unwrap())
                .unwrap();
        }
        state
    }

    #[test]
    fn prepared_crosswalk_caches_by_fingerprint() {
        let state = populated();
        let (first, hit1) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(!hit1);
        let (second, hit2) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(state.cache.stats().entries, 1);
        assert_eq!(state.metrics.prepare_latency.count(), 1);
    }

    #[test]
    fn re_registering_references_changes_the_key() {
        let state = populated();
        let (_, _) = state.prepared_crosswalk("zip", "county").unwrap();
        {
            let mut p = state.pipeline_mut();
            let dm = DisaggregationMatrix::from_triples(
                "jobs",
                2,
                2,
                [(0, 0, 1.0), (1, 0, 2.0), (1, 1, 2.0)],
            )
            .unwrap();
            p.register_reference("zip", "county", ReferenceData::from_dm("jobs", dm).unwrap())
                .unwrap();
        }
        let (prepared, hit) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(!hit, "new reference set must not reuse the old snapshot");
        assert_eq!(prepared.references().len(), 2);
    }

    #[test]
    fn missing_crosswalk_is_an_error() {
        let state = populated();
        assert!(state.prepared_crosswalk("county", "zip").is_err());
    }

    #[test]
    fn durable_state_warm_starts_registry_and_crosswalks() {
        let dir = std::env::temp_dir().join(format!("geoalign-serve-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cold_estimate: Vec<f64> = {
            let state = AppState::open_durable(&dir, 8).unwrap();
            {
                let mut p = state.pipeline_mut();
                p.register_system("zip", ["z1", "z2"]);
                p.register_system("county", ["A", "B"]);
            }
            state
                .persist_system("zip", &["z1".to_owned(), "z2".to_owned()])
                .unwrap();
            state
                .persist_system("county", &["A".to_owned(), "B".to_owned()])
                .unwrap();
            let dm = DisaggregationMatrix::from_triples(
                "pop",
                2,
                2,
                [(0, 0, 10.0), (0, 1, 30.0), (1, 1, 5.0)],
            )
            .unwrap();
            let reference = ReferenceData::from_dm("pop", dm).unwrap();
            state
                .pipeline_mut()
                .register_reference("zip", "county", reference.clone())
                .unwrap();
            state
                .persist_reference("zip", "county", &reference)
                .unwrap();

            let (prepared, hit) = state.prepared_crosswalk("zip", "county").unwrap();
            assert!(!hit);
            let obj = geoalign_partition::AggregateVector::new("o", vec![7.0, 11.0]).unwrap();
            let result = prepared.apply_values(&obj).unwrap();
            state.durable().unwrap().flush();
            result.estimate
        };

        // A fresh state over the same directory replays the registry and
        // revives the prepared crosswalk from disk: the closure would
        // panic if the solver ran again.
        let state = AppState::open_durable(&dir, 8).unwrap();
        assert!(state.pipeline().has_system("zip"));
        assert!(state.pipeline().has_system("county"));
        assert_eq!(state.pipeline().references("zip", "county").len(), 1);
        let (prepared, hit) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(hit, "warm start must revive the prepared crosswalk");
        let obj = geoalign_partition::AggregateVector::new("o", vec![7.0, 11.0]).unwrap();
        let warm = prepared.apply_values(&obj).unwrap();
        for (w, c) in warm.estimate.iter().zip(&cold_estimate) {
            assert_eq!(
                w.to_bits(),
                c.to_bits(),
                "warm answer must be byte-identical"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
