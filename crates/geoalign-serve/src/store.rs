//! Shared service state: the registry of unit systems and references
//! (an [`IntegrationPipeline`] behind a `RwLock`) plus the prepared-
//! crosswalk cache and the metrics. Registration takes the write lock;
//! the `/crosswalk` hot path only ever takes the read lock, and all
//! cache and metrics traffic is lock-free or sharded.

use crate::metrics::Metrics;
use geoalign_core::{
    persist, CoreError, CrosswalkKey, CrosswalkStore, DurableBacking, IntegrationPipeline,
    PreparedCrosswalk, ReferenceData,
};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Default number of prepared crosswalks the cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Everything the worker threads share.
pub struct AppState {
    pipeline: RwLock<IntegrationPipeline>,
    /// The prepared-crosswalk cache.
    pub cache: CrosswalkStore,
    /// Service metrics.
    pub metrics: Metrics,
    started: Instant,
    access_log: Mutex<Option<Box<dyn Write + Send>>>,
    /// The durable tier (`serve --data-dir`): registrations are written
    /// through synchronously, prepared crosswalks behind the cache.
    durable: Option<Arc<DurableBacking>>,
    /// Next `ref/<nnnnnnnn>` key index — one past the highest replayed.
    next_ref_index: AtomicU64,
}

impl std::fmt::Debug for AppState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppState")
            .field("cache", &self.cache)
            .field("metrics", &self.metrics)
            .field("uptime_seconds", &self.uptime().as_secs())
            .finish_non_exhaustive()
    }
}

impl AppState {
    /// Fresh state with an empty pipeline and a cache of `capacity`.
    pub fn new(cache_capacity: usize) -> Arc<Self> {
        Self::with_pipeline(IntegrationPipeline::new(), cache_capacity)
    }

    /// State wrapping an already-populated pipeline (used by tests and by
    /// embedders that register data programmatically).
    pub fn with_pipeline(pipeline: IntegrationPipeline, cache_capacity: usize) -> Arc<Self> {
        Arc::new(AppState {
            pipeline: RwLock::new(pipeline),
            cache: CrosswalkStore::new(cache_capacity),
            metrics: Metrics::default(),
            started: Instant::now(),
            access_log: Mutex::new(None),
            durable: None,
            next_ref_index: AtomicU64::new(0),
        })
    }

    /// State backed by the durable store at `data_dir` (`serve
    /// --data-dir`). Opens (or creates) the store — running its recovery:
    /// snapshot load, WAL replay, torn-tail repair — then warm-starts the
    /// registry by replaying every persisted unit system and reference
    /// registration into a fresh pipeline. Prepared crosswalks revive
    /// lazily through the cache's read-through, so the first `/crosswalk`
    /// after a restart answers from disk without re-running the solver.
    pub fn open_durable(
        data_dir: impl AsRef<std::path::Path>,
        cache_capacity: usize,
    ) -> Result<Arc<Self>, CoreError> {
        let backing = Arc::new(DurableBacking::open(data_dir)?);
        let mut pipeline = IntegrationPipeline::new();

        // Replay systems first: references validate against them.
        for (key, bytes) in backing.store().iter_prefix(persist::SYSTEM_PREFIX) {
            let Some(name) = persist::system_name_from_key(&key) else {
                continue;
            };
            let units = persist::decode_unit_system(&bytes)?;
            pipeline.register_system(name, units);
        }
        // `ref/<nnnnnnnn>` keys sort in registration order, so the warm
        // pipeline sees the same sequence the cold one did.
        let mut next_ref_index = 0u64;
        for (key, bytes) in backing.store().iter_prefix(persist::REFERENCE_PREFIX) {
            let (source, target, data) = persist::decode_reference(&bytes)?;
            pipeline.register_reference(&source, &target, data)?;
            if let Some(idx) = key
                .strip_prefix(persist::REFERENCE_PREFIX)
                .and_then(|s| s.parse::<u64>().ok())
            {
                next_ref_index = next_ref_index.max(idx + 1);
            }
        }

        Ok(Arc::new(AppState {
            pipeline: RwLock::new(pipeline),
            cache: CrosswalkStore::with_backing(cache_capacity, Arc::clone(&backing)),
            metrics: Metrics::default(),
            started: Instant::now(),
            access_log: Mutex::new(None),
            durable: Some(backing),
            next_ref_index: AtomicU64::new(next_ref_index),
        }))
    }

    /// The durable tier, when the server was started with `--data-dir`.
    pub fn durable(&self) -> Option<&Arc<DurableBacking>> {
        self.durable.as_ref()
    }

    /// Writes a unit-system registration through to the durable store.
    /// Registration is rare and losing one would orphan every reference
    /// on it, so this is a synchronous durable append (unlike prepared
    /// crosswalks, which are persisted behind the response).
    pub fn persist_system(&self, name: &str, unit_ids: &[String]) -> Result<(), CoreError> {
        let Some(backing) = &self.durable else {
            return Ok(());
        };
        backing
            .store()
            .put(
                &persist::system_key(name),
                persist::encode_unit_system(unit_ids),
            )
            .map_err(|e| CoreError::Persist {
                detail: e.to_string(),
            })?;
        Ok(())
    }

    /// Writes a reference registration through to the durable store under
    /// the next `ref/<nnnnnnnn>` key. Synchronous, like
    /// [`Self::persist_system`]. Callers that can race (the `/references`
    /// handler) must invoke this while still holding the pipeline write
    /// lock, so the persisted index order matches registration order and
    /// warm-start replay sees the same sequence the cold pipeline did.
    pub fn persist_reference(
        &self,
        source: &str,
        target: &str,
        reference: &ReferenceData,
    ) -> Result<(), CoreError> {
        let Some(backing) = &self.durable else {
            return Ok(());
        };
        let index = self.next_ref_index.fetch_add(1, Ordering::SeqCst);
        backing
            .store()
            .put(
                &persist::reference_key(index),
                persist::encode_reference(source, target, reference),
            )
            .map_err(|e| CoreError::Persist {
                detail: e.to_string(),
            })?;
        Ok(())
    }

    /// Time since this state was created (the server's uptime).
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Installs an access-log sink; each finished request appends one
    /// JSON line. Passing a fresh sink replaces the previous one.
    pub fn set_access_log(&self, sink: Box<dyn Write + Send>) {
        *self.access_log.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    }

    /// Whether an access-log sink is installed.
    pub fn access_log_enabled(&self) -> bool {
        self.access_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Appends one line to the access log, if a sink is installed. Write
    /// failures are swallowed — logging must never break serving.
    pub fn log_access(&self, line: &str) {
        let mut guard = self.access_log.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = guard.as_mut() {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }

    /// Read access to the registry.
    pub fn pipeline(&self) -> RwLockReadGuard<'_, IntegrationPipeline> {
        self.pipeline.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write access to the registry (registration endpoints only).
    pub fn pipeline_mut(&self) -> RwLockWriteGuard<'_, IntegrationPipeline> {
        self.pipeline.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The prepared crosswalk for `source → target` over the references
    /// currently registered for that pair — cached by content
    /// fingerprint, so re-registered references can never serve a stale
    /// snapshot. Returns the snapshot and whether it was a cache hit;
    /// cache misses feed the prepare-latency histogram.
    pub fn prepared_crosswalk(
        &self,
        source: &str,
        target: &str,
    ) -> Result<(Arc<PreparedCrosswalk>, bool), CoreError> {
        let pipeline = self.pipeline();
        let refs: Vec<&ReferenceData> = pipeline.references(source, target).iter().collect();
        if refs.is_empty() {
            return Err(CoreError::UnknownReference {
                name: format!("crosswalk {source} -> {target}"),
            });
        }
        let key = CrosswalkKey::new(source, target, &refs);
        let aligner = *pipeline.aligner();
        let t0 = Instant::now();
        let (prepared, hit) = self
            .cache
            .get_or_insert_with(&key, || aligner.prepare(&refs))?;
        if !hit {
            self.metrics.prepare_latency.record(t0.elapsed());
        }
        Ok((prepared, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_partition::DisaggregationMatrix;

    fn populated() -> Arc<AppState> {
        let state = AppState::new(8);
        {
            let mut p = state.pipeline_mut();
            p.register_system("zip", ["z1", "z2"]);
            p.register_system("county", ["A", "B"]);
            let dm = DisaggregationMatrix::from_triples(
                "pop",
                2,
                2,
                [(0, 0, 10.0), (0, 1, 30.0), (1, 1, 5.0)],
            )
            .unwrap();
            p.register_reference("zip", "county", ReferenceData::from_dm("pop", dm).unwrap())
                .unwrap();
        }
        state
    }

    #[test]
    fn prepared_crosswalk_caches_by_fingerprint() {
        let state = populated();
        let (first, hit1) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(!hit1);
        let (second, hit2) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(state.cache.stats().entries, 1);
        assert_eq!(state.metrics.prepare_latency.count(), 1);
    }

    #[test]
    fn re_registering_references_changes_the_key() {
        let state = populated();
        let (_, _) = state.prepared_crosswalk("zip", "county").unwrap();
        {
            let mut p = state.pipeline_mut();
            let dm = DisaggregationMatrix::from_triples(
                "jobs",
                2,
                2,
                [(0, 0, 1.0), (1, 0, 2.0), (1, 1, 2.0)],
            )
            .unwrap();
            p.register_reference("zip", "county", ReferenceData::from_dm("jobs", dm).unwrap())
                .unwrap();
        }
        let (prepared, hit) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(!hit, "new reference set must not reuse the old snapshot");
        assert_eq!(prepared.references().len(), 2);
    }

    #[test]
    fn missing_crosswalk_is_an_error() {
        let state = populated();
        assert!(state.prepared_crosswalk("county", "zip").is_err());
    }

    #[test]
    fn durable_state_warm_starts_registry_and_crosswalks() {
        let dir = std::env::temp_dir().join(format!("geoalign-serve-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cold_estimate: Vec<f64> = {
            let state = AppState::open_durable(&dir, 8).unwrap();
            {
                let mut p = state.pipeline_mut();
                p.register_system("zip", ["z1", "z2"]);
                p.register_system("county", ["A", "B"]);
            }
            state
                .persist_system("zip", &["z1".to_owned(), "z2".to_owned()])
                .unwrap();
            state
                .persist_system("county", &["A".to_owned(), "B".to_owned()])
                .unwrap();
            let dm = DisaggregationMatrix::from_triples(
                "pop",
                2,
                2,
                [(0, 0, 10.0), (0, 1, 30.0), (1, 1, 5.0)],
            )
            .unwrap();
            let reference = ReferenceData::from_dm("pop", dm).unwrap();
            state
                .pipeline_mut()
                .register_reference("zip", "county", reference.clone())
                .unwrap();
            state
                .persist_reference("zip", "county", &reference)
                .unwrap();

            let (prepared, hit) = state.prepared_crosswalk("zip", "county").unwrap();
            assert!(!hit);
            let obj = geoalign_partition::AggregateVector::new("o", vec![7.0, 11.0]).unwrap();
            let result = prepared.apply_values(&obj).unwrap();
            state.durable().unwrap().flush();
            result.estimate
        };

        // A fresh state over the same directory replays the registry and
        // revives the prepared crosswalk from disk: the closure would
        // panic if the solver ran again.
        let state = AppState::open_durable(&dir, 8).unwrap();
        assert!(state.pipeline().has_system("zip"));
        assert!(state.pipeline().has_system("county"));
        assert_eq!(state.pipeline().references("zip", "county").len(), 1);
        let (prepared, hit) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(hit, "warm start must revive the prepared crosswalk");
        let obj = geoalign_partition::AggregateVector::new("o", vec![7.0, 11.0]).unwrap();
        let warm = prepared.apply_values(&obj).unwrap();
        for (w, c) in warm.estimate.iter().zip(&cold_estimate) {
            assert_eq!(
                w.to_bits(),
                c.to_bits(),
                "warm answer must be byte-identical"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
