//! Shared service state: the registry of unit systems and references
//! (an [`IntegrationPipeline`] behind a `RwLock`) plus the prepared-
//! crosswalk cache and the metrics. Registration takes the write lock;
//! the `/crosswalk` hot path only ever takes the read lock, and all
//! cache and metrics traffic is lock-free or sharded.

use crate::metrics::Metrics;
use geoalign_core::{
    CoreError, CrosswalkKey, CrosswalkStore, IntegrationPipeline, PreparedCrosswalk, ReferenceData,
};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Default number of prepared crosswalks the cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Everything the worker threads share.
#[derive(Debug)]
pub struct AppState {
    pipeline: RwLock<IntegrationPipeline>,
    /// The prepared-crosswalk cache.
    pub cache: CrosswalkStore,
    /// Service metrics.
    pub metrics: Metrics,
}

impl AppState {
    /// Fresh state with an empty pipeline and a cache of `capacity`.
    pub fn new(cache_capacity: usize) -> Arc<Self> {
        Arc::new(AppState {
            pipeline: RwLock::new(IntegrationPipeline::new()),
            cache: CrosswalkStore::new(cache_capacity),
            metrics: Metrics::default(),
        })
    }

    /// State wrapping an already-populated pipeline (used by tests and by
    /// embedders that register data programmatically).
    pub fn with_pipeline(pipeline: IntegrationPipeline, cache_capacity: usize) -> Arc<Self> {
        Arc::new(AppState {
            pipeline: RwLock::new(pipeline),
            cache: CrosswalkStore::new(cache_capacity),
            metrics: Metrics::default(),
        })
    }

    /// Read access to the registry.
    pub fn pipeline(&self) -> RwLockReadGuard<'_, IntegrationPipeline> {
        self.pipeline.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write access to the registry (registration endpoints only).
    pub fn pipeline_mut(&self) -> RwLockWriteGuard<'_, IntegrationPipeline> {
        self.pipeline.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The prepared crosswalk for `source → target` over the references
    /// currently registered for that pair — cached by content
    /// fingerprint, so re-registered references can never serve a stale
    /// snapshot. Returns the snapshot and whether it was a cache hit;
    /// cache misses feed the prepare-latency histogram.
    pub fn prepared_crosswalk(
        &self,
        source: &str,
        target: &str,
    ) -> Result<(Arc<PreparedCrosswalk>, bool), CoreError> {
        let pipeline = self.pipeline();
        let refs: Vec<&ReferenceData> = pipeline.references(source, target).iter().collect();
        if refs.is_empty() {
            return Err(CoreError::UnknownReference {
                name: format!("crosswalk {source} -> {target}"),
            });
        }
        let key = CrosswalkKey::new(source, target, &refs);
        let aligner = *pipeline.aligner();
        let t0 = Instant::now();
        let (prepared, hit) = self
            .cache
            .get_or_insert_with(&key, || aligner.prepare(&refs))?;
        if !hit {
            self.metrics.prepare_latency.record(t0.elapsed());
        }
        Ok((prepared, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_partition::DisaggregationMatrix;

    fn populated() -> Arc<AppState> {
        let state = AppState::new(8);
        {
            let mut p = state.pipeline_mut();
            p.register_system("zip", ["z1", "z2"]);
            p.register_system("county", ["A", "B"]);
            let dm = DisaggregationMatrix::from_triples(
                "pop",
                2,
                2,
                [(0, 0, 10.0), (0, 1, 30.0), (1, 1, 5.0)],
            )
            .unwrap();
            p.register_reference("zip", "county", ReferenceData::from_dm("pop", dm).unwrap())
                .unwrap();
        }
        state
    }

    #[test]
    fn prepared_crosswalk_caches_by_fingerprint() {
        let state = populated();
        let (first, hit1) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(!hit1);
        let (second, hit2) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(state.cache.stats().entries, 1);
        assert_eq!(state.metrics.prepare_latency.count(), 1);
    }

    #[test]
    fn re_registering_references_changes_the_key() {
        let state = populated();
        let (_, _) = state.prepared_crosswalk("zip", "county").unwrap();
        {
            let mut p = state.pipeline_mut();
            let dm = DisaggregationMatrix::from_triples(
                "jobs",
                2,
                2,
                [(0, 0, 1.0), (1, 0, 2.0), (1, 1, 2.0)],
            )
            .unwrap();
            p.register_reference("zip", "county", ReferenceData::from_dm("jobs", dm).unwrap())
                .unwrap();
        }
        let (prepared, hit) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(!hit, "new reference set must not reuse the old snapshot");
        assert_eq!(prepared.references().len(), 2);
    }

    #[test]
    fn missing_crosswalk_is_an_error() {
        let state = populated();
        assert!(state.prepared_crosswalk("county", "zip").is_err());
    }
}
