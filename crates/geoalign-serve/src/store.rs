//! Shared service state: the registry of unit systems and references
//! (an [`IntegrationPipeline`] behind a `RwLock`) plus the prepared-
//! crosswalk cache and the metrics. Registration takes the write lock;
//! the `/crosswalk` hot path only ever takes the read lock, and all
//! cache and metrics traffic is lock-free or sharded.

use crate::metrics::Metrics;
use geoalign_core::{
    CoreError, CrosswalkKey, CrosswalkStore, IntegrationPipeline, PreparedCrosswalk, ReferenceData,
};
use std::io::Write;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Default number of prepared crosswalks the cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Everything the worker threads share.
pub struct AppState {
    pipeline: RwLock<IntegrationPipeline>,
    /// The prepared-crosswalk cache.
    pub cache: CrosswalkStore,
    /// Service metrics.
    pub metrics: Metrics,
    started: Instant,
    access_log: Mutex<Option<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for AppState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppState")
            .field("cache", &self.cache)
            .field("metrics", &self.metrics)
            .field("uptime_seconds", &self.uptime().as_secs())
            .finish_non_exhaustive()
    }
}

impl AppState {
    /// Fresh state with an empty pipeline and a cache of `capacity`.
    pub fn new(cache_capacity: usize) -> Arc<Self> {
        Self::with_pipeline(IntegrationPipeline::new(), cache_capacity)
    }

    /// State wrapping an already-populated pipeline (used by tests and by
    /// embedders that register data programmatically).
    pub fn with_pipeline(pipeline: IntegrationPipeline, cache_capacity: usize) -> Arc<Self> {
        Arc::new(AppState {
            pipeline: RwLock::new(pipeline),
            cache: CrosswalkStore::new(cache_capacity),
            metrics: Metrics::default(),
            started: Instant::now(),
            access_log: Mutex::new(None),
        })
    }

    /// Time since this state was created (the server's uptime).
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Installs an access-log sink; each finished request appends one
    /// JSON line. Passing a fresh sink replaces the previous one.
    pub fn set_access_log(&self, sink: Box<dyn Write + Send>) {
        *self.access_log.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    }

    /// Whether an access-log sink is installed.
    pub fn access_log_enabled(&self) -> bool {
        self.access_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Appends one line to the access log, if a sink is installed. Write
    /// failures are swallowed — logging must never break serving.
    pub fn log_access(&self, line: &str) {
        let mut guard = self.access_log.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = guard.as_mut() {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }

    /// Read access to the registry.
    pub fn pipeline(&self) -> RwLockReadGuard<'_, IntegrationPipeline> {
        self.pipeline.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write access to the registry (registration endpoints only).
    pub fn pipeline_mut(&self) -> RwLockWriteGuard<'_, IntegrationPipeline> {
        self.pipeline.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The prepared crosswalk for `source → target` over the references
    /// currently registered for that pair — cached by content
    /// fingerprint, so re-registered references can never serve a stale
    /// snapshot. Returns the snapshot and whether it was a cache hit;
    /// cache misses feed the prepare-latency histogram.
    pub fn prepared_crosswalk(
        &self,
        source: &str,
        target: &str,
    ) -> Result<(Arc<PreparedCrosswalk>, bool), CoreError> {
        let pipeline = self.pipeline();
        let refs: Vec<&ReferenceData> = pipeline.references(source, target).iter().collect();
        if refs.is_empty() {
            return Err(CoreError::UnknownReference {
                name: format!("crosswalk {source} -> {target}"),
            });
        }
        let key = CrosswalkKey::new(source, target, &refs);
        let aligner = *pipeline.aligner();
        let t0 = Instant::now();
        let (prepared, hit) = self
            .cache
            .get_or_insert_with(&key, || aligner.prepare(&refs))?;
        if !hit {
            self.metrics.prepare_latency.record(t0.elapsed());
        }
        Ok((prepared, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_partition::DisaggregationMatrix;

    fn populated() -> Arc<AppState> {
        let state = AppState::new(8);
        {
            let mut p = state.pipeline_mut();
            p.register_system("zip", ["z1", "z2"]);
            p.register_system("county", ["A", "B"]);
            let dm = DisaggregationMatrix::from_triples(
                "pop",
                2,
                2,
                [(0, 0, 10.0), (0, 1, 30.0), (1, 1, 5.0)],
            )
            .unwrap();
            p.register_reference("zip", "county", ReferenceData::from_dm("pop", dm).unwrap())
                .unwrap();
        }
        state
    }

    #[test]
    fn prepared_crosswalk_caches_by_fingerprint() {
        let state = populated();
        let (first, hit1) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(!hit1);
        let (second, hit2) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(state.cache.stats().entries, 1);
        assert_eq!(state.metrics.prepare_latency.count(), 1);
    }

    #[test]
    fn re_registering_references_changes_the_key() {
        let state = populated();
        let (_, _) = state.prepared_crosswalk("zip", "county").unwrap();
        {
            let mut p = state.pipeline_mut();
            let dm = DisaggregationMatrix::from_triples(
                "jobs",
                2,
                2,
                [(0, 0, 1.0), (1, 0, 2.0), (1, 1, 2.0)],
            )
            .unwrap();
            p.register_reference("zip", "county", ReferenceData::from_dm("jobs", dm).unwrap())
                .unwrap();
        }
        let (prepared, hit) = state.prepared_crosswalk("zip", "county").unwrap();
        assert!(!hit, "new reference set must not reuse the old snapshot");
        assert_eq!(prepared.references().len(), 2);
    }

    #[test]
    fn missing_crosswalk_is_an_error() {
        let state = populated();
        assert!(state.prepared_crosswalk("county", "zip").is_err());
    }
}
