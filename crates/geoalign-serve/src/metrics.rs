//! Lock-free service metrics: per-endpoint request counters and
//! log-bucketed latency histograms per algorithm phase, fed from the
//! [`geoalign_core::PhaseTimings`] every crosswalk apply reports.

use crate::json::Json;
use geoalign_core::PhaseTimings;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` covers durations in
/// `[2^i, 2^(i+1))` microseconds, with the last bucket open-ended.
const BUCKETS: usize = 24;

/// A log₂-bucketed latency histogram with lock-free recording.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = if micros == 0 {
            0
        } else {
            (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean recorded duration in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// JSON rendering: count, sum, mean, and the non-empty buckets as
    /// `[lower_bound_micros, count]` pairs.
    pub fn to_json(&self) -> Json {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                let lower = if i == 0 { 0 } else { 1u64 << i };
                buckets.push(Json::Array(vec![
                    Json::Number(lower as f64),
                    Json::Number(n as f64),
                ]));
            }
        }
        Json::object([
            ("count", Json::Number(self.count() as f64)),
            (
                "sum_micros",
                Json::Number(self.sum_micros.load(Ordering::Relaxed) as f64),
            ),
            ("mean_micros", Json::Number(self.mean_micros())),
            ("buckets_micros", Json::Array(buckets)),
        ])
    }
}

/// All service metrics; shared via `Arc` across worker threads.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests answered, total (any route, any status).
    pub requests_total: AtomicU64,
    /// Requests answered with a 2xx status.
    pub requests_ok: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub requests_failed: AtomicU64,
    /// `/crosswalk` attribute vectors applied.
    pub attributes_applied: AtomicU64,
    /// Wall-clock latency of whole requests.
    pub request_latency: Histogram,
    /// Prepare-phase latency (cache misses only).
    pub prepare_latency: Histogram,
    /// Weight-learning latency per applied attribute.
    pub weight_learning_latency: Histogram,
    /// Disaggregation latency per applied attribute.
    pub disaggregation_latency: Histogram,
}

impl Metrics {
    /// Counts one finished request.
    pub fn record_request(&self, status: u16, latency: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        if (200..300).contains(&status) {
            self.requests_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.requests_failed.fetch_add(1, Ordering::Relaxed);
        }
        self.request_latency.record(latency);
    }

    /// Feeds one apply's phase timings into the per-phase histograms.
    pub fn record_phases(&self, t: &PhaseTimings) {
        self.attributes_applied.fetch_add(1, Ordering::Relaxed);
        self.weight_learning_latency.record(t.weight_learning);
        self.disaggregation_latency.record(t.disaggregation);
    }

    /// JSON snapshot of every counter and histogram.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "requests_total",
                Json::Number(self.requests_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "requests_ok",
                Json::Number(self.requests_ok.load(Ordering::Relaxed) as f64),
            ),
            (
                "requests_failed",
                Json::Number(self.requests_failed.load(Ordering::Relaxed) as f64),
            ),
            (
                "attributes_applied",
                Json::Number(self.attributes_applied.load(Ordering::Relaxed) as f64),
            ),
            ("request_latency", self.request_latency.to_json()),
            ("prepare_latency", self.prepare_latency.to_json()),
            (
                "weight_learning_latency",
                self.weight_learning_latency.to_json(),
            ),
            (
                "disaggregation_latency",
                self.disaggregation_latency.to_json(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let h = Histogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 4);
        assert!((h.mean_micros() - 251.0).abs() < 1e-9);
        let json = h.to_json();
        assert_eq!(json.get("count").unwrap().as_f64(), Some(4.0));
        // 0µs and 1µs land in bucket 0; 3µs in [2,4); 1000µs in [512,1024).
        let buckets = json.get("buckets_micros").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 3);
    }

    #[test]
    fn request_counters_split_by_status() {
        let m = Metrics::default();
        m.record_request(200, Duration::from_micros(5));
        m.record_request(404, Duration::from_micros(7));
        m.record_request(200, Duration::from_micros(2));
        let json = m.to_json();
        assert_eq!(json.get("requests_total").unwrap().as_f64(), Some(3.0));
        assert_eq!(json.get("requests_ok").unwrap().as_f64(), Some(2.0));
        assert_eq!(json.get("requests_failed").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn phase_timings_feed_histograms() {
        let m = Metrics::default();
        let t = PhaseTimings {
            weight_learning: Duration::from_micros(10),
            disaggregation: Duration::from_micros(20),
            ..PhaseTimings::default()
        };
        m.record_phases(&t);
        m.record_phases(&t);
        assert_eq!(m.attributes_applied.load(Ordering::Relaxed), 2);
        assert_eq!(m.weight_learning_latency.count(), 2);
        assert_eq!(m.disaggregation_latency.count(), 2);
    }
}
