//! Service metrics, backed by a per-instance [`geoalign_obs::Registry`].
//!
//! The histogram type is [`geoalign_obs::Histogram`] re-exported — the
//! serve-local log₂ histogram this module used to define moved there
//! (with fixed bucket math: sub-microsecond and 1µs durations now land in
//! distinct buckets). The `/metrics` JSON shape is unchanged from the
//! pre-registry implementation; the registry additionally enables the
//! Prometheus text exposition of `GET /metrics?format=prometheus`.
//!
//! Each [`Metrics`] owns its registry (metric values are per-server, not
//! process-global), under names following the `geoalign_<crate>_<name>_
//! <unit>` convention of DESIGN.md §8.

use crate::json::Json;
use geoalign_core::PhaseTimings;
pub use geoalign_obs::Histogram;
use geoalign_obs::{bucket_lower_bound, Counter, Gauge, Registry};
use std::sync::Arc;
use std::time::Duration;

/// All service metrics; shared via `Arc` across worker threads.
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,
    /// Requests answered, total (any route, any status).
    pub requests_total: Counter,
    /// Requests answered with a 2xx status.
    pub requests_ok: Counter,
    /// Requests answered with a 4xx/5xx status.
    pub requests_failed: Counter,
    /// `/crosswalk` attribute vectors applied.
    pub attributes_applied: Counter,
    /// Requests served on an already-used keep-alive connection (the
    /// second and later requests of each connection).
    pub keepalive_reuse: Counter,
    /// Connections shed with 503 because the worker queue was saturated.
    pub shed: Counter,
    /// Requests rejected with 431 (head byte limit).
    pub header_limit_rejections: Counter,
    /// Requests rejected with 413 (body byte limit).
    pub body_limit_rejections: Counter,
    /// Requests rejected with 408 (read deadline).
    pub timeouts: Counter,
    /// Request bodies rejected for JSON nesting past the depth limit.
    pub depth_limit_rejections: Counter,
    /// Design-matrix rows touched by incremental prepared-crosswalk
    /// updates on `/ingest`.
    pub ingest_touched_rows: Counter,
    /// Points per `/ingest` batch (a value histogram, not a latency).
    pub ingest_batch_points: Arc<Histogram>,
    /// Wall-clock latency of whole requests.
    pub request_latency: Arc<Histogram>,
    /// Prepare-phase latency (cache misses only).
    pub prepare_latency: Arc<Histogram>,
    /// Weight-learning latency per applied attribute.
    pub weight_learning_latency: Arc<Histogram>,
    /// Disaggregation latency per applied attribute.
    pub disaggregation_latency: Arc<Histogram>,
    /// Per-route SLO latency histograms and burn counters (registered in
    /// the same registry; exposed via Prometheus, not the legacy JSON).
    pub slo: crate::slo::Slo,
    /// Connections currently registered with the reactor (gauge; includes
    /// idle keep-alive connections — they cost an fd and a slab slot, not
    /// a thread).
    pub open_connections: Gauge,
    /// Times the reactor's poll/epoll wait returned (each return may
    /// carry many readiness events).
    pub poll_wakeups: Counter,
    /// Readiness events delivered to connections (reads, writes, wakeup
    /// bytes, listener accepts).
    pub readiness_events: Counter,
    /// State transitions a connection made over its lifetime, recorded at
    /// close (a value histogram: 2 ≈ one-shot request, higher = keep-alive
    /// reuse).
    pub conn_state_transitions: Arc<Histogram>,
    /// Errors returned by `accept(2)` that the loop used to swallow.
    pub accept_errors: Counter,
    /// Socket-option failures (`O_NONBLOCK`/`TCP_NODELAY`/timeouts) on
    /// accepted connections, previously discarded with `let _`.
    pub sockopt_errors: Counter,
    /// Readiness-poller failures: `epoll_ctl` registrations rejected by
    /// the kernel (the connection is closed, not phantom-registered) and
    /// non-EINTR poll/epoll-wait errors in the event loop.
    pub poller_errors: Counter,
}

impl Default for Metrics {
    fn default() -> Self {
        let registry = Registry::new();
        let requests_total = registry.counter(
            "geoalign_serve_requests_total",
            "Requests answered (any route, any status)",
        );
        let requests_ok = registry.counter(
            "geoalign_serve_requests_ok_total",
            "Requests answered with a 2xx status",
        );
        let requests_failed = registry.counter(
            "geoalign_serve_requests_failed_total",
            "Requests answered with a 4xx/5xx status",
        );
        let attributes_applied = registry.counter(
            "geoalign_serve_attributes_applied_total",
            "/crosswalk attribute vectors applied",
        );
        let keepalive_reuse = registry.counter(
            "geoalign_serve_keepalive_reuse_total",
            "Requests served on an already-used keep-alive connection",
        );
        let shed = registry.counter(
            "geoalign_serve_shed_total",
            "Connections answered 503 because the worker queue was saturated",
        );
        let header_limit_rejections = registry.counter(
            "geoalign_serve_header_limit_total",
            "Requests rejected with 431 (request-head byte limit)",
        );
        let body_limit_rejections = registry.counter(
            "geoalign_serve_body_limit_total",
            "Requests rejected with 413 (body byte limit)",
        );
        let timeouts = registry.counter(
            "geoalign_serve_timeout_total",
            "Requests rejected with 408 (read deadline)",
        );
        let depth_limit_rejections = registry.counter(
            "geoalign_serve_depth_limit_total",
            "Bodies rejected for JSON nesting past the depth limit",
        );
        let ingest_touched_rows = registry.counter(
            "geoalign_serve_ingest_touched_rows_total",
            "Design-matrix rows touched by incremental prepared-crosswalk updates on /ingest",
        );
        let ingest_batch_points = registry.histogram(
            "geoalign_serve_ingest_batch_points",
            "Points per /ingest batch",
        );
        let request_latency = registry.histogram(
            "geoalign_serve_request_latency_micros",
            "Wall-clock latency of whole requests",
        );
        let prepare_latency = registry.histogram(
            "geoalign_serve_prepare_latency_micros",
            "Prepare-phase latency on cache misses",
        );
        let weight_learning_latency = registry.histogram(
            "geoalign_serve_weight_learning_latency_micros",
            "Weight-learning latency per applied attribute",
        );
        let disaggregation_latency = registry.histogram(
            "geoalign_serve_disaggregation_latency_micros",
            "Disaggregation latency per applied attribute",
        );
        let slo = crate::slo::Slo::register(&registry);
        let open_connections = registry.gauge(
            "geoalign_serve_open_connections",
            "Connections currently registered with the reactor (idle keep-alive included)",
        );
        let poll_wakeups = registry.counter(
            "geoalign_serve_poll_wakeups_total",
            "Times the reactor's readiness wait returned",
        );
        let readiness_events = registry.counter(
            "geoalign_serve_readiness_events_total",
            "Readiness events delivered to connections by the reactor",
        );
        let conn_state_transitions = registry.histogram(
            "geoalign_serve_conn_state_transitions",
            "State-machine transitions per connection, recorded at close",
        );
        let accept_errors = registry.counter(
            "geoalign_serve_accept_errors_total",
            "accept(2) errors in the listener loop",
        );
        let sockopt_errors = registry.counter(
            "geoalign_serve_sockopt_errors_total",
            "Socket-option failures on accepted connections",
        );
        let poller_errors = registry.counter(
            "geoalign_serve_poller_errors_total",
            "Readiness-poller failures (epoll_ctl registration and poll-wait errors)",
        );
        Metrics {
            registry,
            requests_total,
            requests_ok,
            requests_failed,
            attributes_applied,
            keepalive_reuse,
            shed,
            header_limit_rejections,
            body_limit_rejections,
            timeouts,
            depth_limit_rejections,
            ingest_touched_rows,
            ingest_batch_points,
            request_latency,
            prepare_latency,
            weight_learning_latency,
            disaggregation_latency,
            slo,
            open_connections,
            poll_wakeups,
            readiness_events,
            conn_state_transitions,
            accept_errors,
            sockopt_errors,
            poller_errors,
        }
    }
}

impl Metrics {
    /// The backing registry — input to the Prometheus exposition.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Counts one finished request. The limit-violation counters key off
    /// the status the hardening layer assigned (431/413/408).
    pub fn record_request(&self, status: u16, latency: Duration) {
        self.requests_total.inc();
        if (200..300).contains(&status) {
            self.requests_ok.inc();
        } else {
            self.requests_failed.inc();
        }
        match status {
            408 => self.timeouts.inc(),
            413 => self.body_limit_rejections.inc(),
            431 => self.header_limit_rejections.inc(),
            _ => {}
        }
        self.request_latency.record(latency);
    }

    /// Feeds one apply's phase timings into the per-phase histograms.
    pub fn record_phases(&self, t: &PhaseTimings) {
        self.attributes_applied.inc();
        self.weight_learning_latency.record(t.weight_learning);
        self.disaggregation_latency.record(t.disaggregation);
    }

    /// JSON snapshot of every counter and histogram, in the shape the
    /// `/metrics` endpoint has served since the endpoint existed.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "requests_total",
                Json::Number(self.requests_total.get() as f64),
            ),
            ("requests_ok", Json::Number(self.requests_ok.get() as f64)),
            (
                "requests_failed",
                Json::Number(self.requests_failed.get() as f64),
            ),
            (
                "attributes_applied",
                Json::Number(self.attributes_applied.get() as f64),
            ),
            (
                "keepalive_reuse",
                Json::Number(self.keepalive_reuse.get() as f64),
            ),
            ("shed", Json::Number(self.shed.get() as f64)),
            (
                "header_limit_rejections",
                Json::Number(self.header_limit_rejections.get() as f64),
            ),
            (
                "body_limit_rejections",
                Json::Number(self.body_limit_rejections.get() as f64),
            ),
            ("timeouts", Json::Number(self.timeouts.get() as f64)),
            (
                "depth_limit_rejections",
                Json::Number(self.depth_limit_rejections.get() as f64),
            ),
            (
                "ingest_touched_rows",
                Json::Number(self.ingest_touched_rows.get() as f64),
            ),
            (
                "ingest_batch_points",
                histogram_to_json(&self.ingest_batch_points),
            ),
            ("request_latency", histogram_to_json(&self.request_latency)),
            ("prepare_latency", histogram_to_json(&self.prepare_latency)),
            (
                "weight_learning_latency",
                histogram_to_json(&self.weight_learning_latency),
            ),
            (
                "disaggregation_latency",
                histogram_to_json(&self.disaggregation_latency),
            ),
        ])
    }
}

/// A histogram's `/metrics` JSON rendering: count, sum, mean, and the
/// non-empty buckets as `[lower_bound_micros, count]` pairs.
pub fn histogram_to_json(h: &Histogram) -> Json {
    let snap = h.snapshot();
    let mut buckets = Vec::new();
    for (i, &n) in snap.buckets.iter().enumerate() {
        if n > 0 {
            buckets.push(Json::Array(vec![
                Json::Number(bucket_lower_bound(i) as f64),
                Json::Number(n as f64),
            ]));
        }
    }
    let mean = if snap.count == 0 {
        0.0
    } else {
        snap.sum as f64 / snap.count as f64
    };
    Json::object([
        ("count", Json::Number(snap.count as f64)),
        ("sum_micros", Json::Number(snap.sum as f64)),
        ("mean_micros", Json::Number(mean)),
        ("buckets_micros", Json::Array(buckets)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let h = Histogram::new();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 251.0).abs() < 1e-9);
        let json = histogram_to_json(&h);
        assert_eq!(json.get("count").unwrap().as_f64(), Some(4.0));
        // Distinct buckets after the bucket-math fix: 0µs in [0,1), 1µs in
        // [1,2), 3µs in [2,4), 1000µs in [512,1024) — four buckets, where
        // the old math collapsed 0µs and 1µs into one.
        let buckets = json.get("buckets_micros").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 4);
        let lowers: Vec<f64> = buckets
            .iter()
            .map(|b| b.as_array().unwrap()[0].as_f64().unwrap())
            .collect();
        assert_eq!(lowers, [0.0, 1.0, 2.0, 512.0]);
    }

    #[test]
    fn request_counters_split_by_status() {
        let m = Metrics::default();
        m.record_request(200, Duration::from_micros(5));
        m.record_request(404, Duration::from_micros(7));
        m.record_request(200, Duration::from_micros(2));
        let json = m.to_json();
        assert_eq!(json.get("requests_total").unwrap().as_f64(), Some(3.0));
        assert_eq!(json.get("requests_ok").unwrap().as_f64(), Some(2.0));
        assert_eq!(json.get("requests_failed").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn phase_timings_feed_histograms() {
        let m = Metrics::default();
        let t = PhaseTimings {
            weight_learning: Duration::from_micros(10),
            disaggregation: Duration::from_micros(20),
            ..PhaseTimings::default()
        };
        m.record_phases(&t);
        m.record_phases(&t);
        assert_eq!(m.attributes_applied.get(), 2);
        assert_eq!(m.weight_learning_latency.count(), 2);
        assert_eq!(m.disaggregation_latency.count(), 2);
    }

    #[test]
    fn json_shape_is_backward_compatible() {
        // Compatibility contract for pre-registry /metrics clients: the
        // original keys keep their order and nesting; the hardening
        // counters are additive, slotted between them.
        let m = Metrics::default();
        m.record_request(200, Duration::from_micros(3));
        let json = m.to_json();
        let Json::Object(pairs) = &json else {
            panic!("metrics JSON must be an object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "requests_total",
                "requests_ok",
                "requests_failed",
                "attributes_applied",
                "keepalive_reuse",
                "shed",
                "header_limit_rejections",
                "body_limit_rejections",
                "timeouts",
                "depth_limit_rejections",
                "ingest_touched_rows",
                "ingest_batch_points",
                "request_latency",
                "prepare_latency",
                "weight_learning_latency",
                "disaggregation_latency"
            ]
        );
        let hist = json.get("request_latency").unwrap();
        let Json::Object(hpairs) = hist else {
            panic!("histogram JSON must be an object")
        };
        let hkeys: Vec<&str> = hpairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            hkeys,
            ["count", "sum_micros", "mean_micros", "buckets_micros"]
        );
        // Buckets are [lower_micros, count] pairs.
        let bucket = &hist.get("buckets_micros").unwrap().as_array().unwrap()[0];
        assert_eq!(bucket.as_array().unwrap().len(), 2);
    }

    #[test]
    fn limit_counters_key_off_the_status() {
        let m = Metrics::default();
        m.record_request(408, Duration::from_micros(1));
        m.record_request(413, Duration::from_micros(1));
        m.record_request(431, Duration::from_micros(1));
        m.record_request(431, Duration::from_micros(1));
        m.record_request(200, Duration::from_micros(1));
        assert_eq!(m.timeouts.get(), 1);
        assert_eq!(m.body_limit_rejections.get(), 1);
        assert_eq!(m.header_limit_rejections.get(), 2);
        assert_eq!(m.requests_failed.get(), 4);
        let json = m.to_json();
        assert_eq!(
            json.get("header_limit_rejections").unwrap().as_f64(),
            Some(2.0)
        );
        // The new counters ride into the Prometheus exposition under the
        // names the runbooks will scrape.
        let text = geoalign_obs::expo::prometheus_text([m.registry()]);
        assert!(
            text.contains("geoalign_serve_header_limit_total 2"),
            "{text}"
        );
        assert!(text.contains("geoalign_serve_shed_total 0"));
        assert!(text.contains("geoalign_serve_keepalive_reuse_total 0"));
    }

    #[test]
    fn registry_drives_prometheus_exposition() {
        let m = Metrics::default();
        m.record_request(200, Duration::from_micros(3));
        let text = geoalign_obs::expo::prometheus_text([m.registry()]);
        assert!(text.contains("# TYPE geoalign_serve_requests_total counter"));
        assert!(text.contains("geoalign_serve_requests_total 1"));
        assert!(text.contains("geoalign_serve_request_latency_micros_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("geoalign_serve_request_latency_micros_count 1"));
    }
}
