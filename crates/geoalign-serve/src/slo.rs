//! Per-route SLO latency tracking.
//!
//! Every route the server exposes gets a latency histogram
//! (`geoalign_serve_route_<route>_latency_micros`) and a burn counter
//! (`geoalign_serve_route_<route>_slo_breach_total`) that increments
//! whenever a request finishes over the route's latency objective. The
//! route set is closed — unknown paths fall into `other` — so the
//! metric cardinality is fixed no matter what clients request. Both
//! series live in the serve [`crate::Metrics`] registry and ride out
//! through `/metrics` with everything else.

use geoalign_obs::{Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// One route's objective and its two series.
#[derive(Debug)]
struct RouteSlo {
    route: &'static str,
    objective: Duration,
    latency: Arc<Histogram>,
    breaches: geoalign_obs::Counter,
}

/// The closed route set and each route's latency objective. `/debug/*`
/// is one bucket: the profile endpoint blocks for its sampling window by
/// design, so it gets a deliberately loose objective.
const ROUTES: &[(&str, &str, Duration)] = &[
    ("/systems", "systems", Duration::from_millis(100)),
    ("/references", "references", Duration::from_millis(250)),
    ("/ingest", "ingest", Duration::from_millis(250)),
    ("/crosswalk", "crosswalk", Duration::from_millis(250)),
    ("/checkpoint", "checkpoint", Duration::from_millis(1000)),
    ("/healthz", "healthz", Duration::from_millis(25)),
    ("/metrics", "metrics", Duration::from_millis(50)),
    ("/debug", "debug", Duration::from_secs(60)),
    ("", "other", Duration::from_millis(100)),
];

/// All per-route SLO series; construct once per [`crate::Metrics`].
#[derive(Debug)]
pub struct Slo {
    routes: Vec<RouteSlo>,
}

impl Slo {
    /// Registers the per-route series in `registry`.
    pub fn register(registry: &Registry) -> Slo {
        let routes = ROUTES
            .iter()
            .map(|&(_, name, objective)| RouteSlo {
                route: name,
                objective,
                latency: registry.histogram(
                    &format!("geoalign_serve_route_{name}_latency_micros"),
                    &format!("Request latency of the {name} route"),
                ),
                breaches: registry.counter(
                    &format!("geoalign_serve_route_{name}_slo_breach_total"),
                    &format!("Requests on the {name} route that finished over its SLO"),
                ),
            })
            .collect();
        Slo { routes }
    }

    /// Maps a request path to its route bucket name.
    pub fn route_of(path: &str) -> &'static str {
        for &(prefix, name, _) in ROUTES {
            if prefix.is_empty() {
                continue;
            }
            if path == prefix
                || path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/')
            {
                return name;
            }
        }
        "other"
    }

    /// Records one finished request.
    pub fn record(&self, path: &str, latency: Duration) {
        let route = Self::route_of(path);
        if let Some(r) = self.routes.iter().find(|r| r.route == route) {
            r.latency.record(latency);
            if latency > r.objective {
                r.breaches.inc();
            }
        }
    }

    /// The latency objective of `path`'s route (for tests and docs).
    pub fn objective_of(path: &str) -> Duration {
        let route = Self::route_of(path);
        ROUTES
            .iter()
            .find(|&&(_, name, _)| name == route)
            .map(|&(_, _, d)| d)
            .unwrap_or(Duration::from_millis(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_map_to_route_buckets() {
        assert_eq!(Slo::route_of("/crosswalk"), "crosswalk");
        assert_eq!(Slo::route_of("/healthz"), "healthz");
        assert_eq!(Slo::route_of("/debug/profile"), "debug");
        assert_eq!(Slo::route_of("/debug/slow"), "debug");
        assert_eq!(Slo::route_of("/nope"), "other");
        assert_eq!(Slo::route_of("/crosswalker"), "other");
    }

    #[test]
    fn breaches_count_only_over_objective() {
        let registry = Registry::new();
        let slo = Slo::register(&registry);
        slo.record("/healthz", Duration::from_millis(1));
        slo.record("/healthz", Duration::from_millis(500));
        slo.record("/crosswalk", Duration::from_millis(100));
        let text = geoalign_obs::expo::prometheus_text([&registry]);
        assert!(
            text.contains("geoalign_serve_route_healthz_slo_breach_total 1"),
            "{text}"
        );
        assert!(
            text.contains("geoalign_serve_route_crosswalk_slo_breach_total 0"),
            "{text}"
        );
        assert!(text.contains("geoalign_serve_route_healthz_latency_micros_count 2"));
    }
}
