//! Per-connection state machine of the readiness reactor.
//!
//! Each accepted socket is one [`Connection`]: a non-blocking
//! `TcpStream`, an incremental [`RequestParser`], and an explicit state
//! (`Idle → ReadingHead → ReadingBody → Executing → Writing → Idle`,
//! with `Draining` as the lingering-close tail). The reactor owns the
//! event loop; this module owns what one readiness event, deadline
//! expiry, or finished response means for one connection — every method
//! returns a [`Directive`] telling the reactor what to do next.
//!
//! The state transitions encode, bit-for-bit, the HTTP semantics the
//! blocking front end had (DESIGN.md §10):
//!
//! - **Idle** expiry closes silently — an idle peer is not an error, so
//!   no 408 and no counter (`an_idle_connection_is_reaped_silently`).
//! - **ReadingHead**'s deadline is fixed at the first byte of the
//!   request and never extended by trickled progress — the slow-loris
//!   answer is 408 within one idle-timeout of the head starting.
//! - **ReadingBody**'s deadline resets on every read with progress,
//!   mirroring the per-read socket timeout of the blocking path.
//! - **Executing** has no deadline and no socket interest: the request
//!   is on a worker, pipelined bytes wait in the kernel buffer.
//! - **Writing** flushes the single serialized response buffer; normal
//!   closes (`Connection: close`, request cap, drain) drop the socket
//!   plainly, while protocol errors go through **Draining** — the
//!   half-close + bounded drain that lets the error response reach a
//!   peer with unread bytes still queued (no RST before the 4xx).

use crate::http::{HttpError, Request, RequestParser, Response, MAX_HEAD_BYTES};
use crate::metrics::Metrics;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Byte cap on the lingering-close drain (matches the blocking
/// front end's `lingering_close`).
const DRAIN_BUDGET_BYTES: usize = 1 << 20;
/// Wall-clock cap on the lingering-close drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

/// What the connection is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Between requests on a keep-alive connection: waiting for the
    /// first byte of the next request. Expiry closes silently.
    Idle {
        /// When the idle timeout reaps this connection.
        deadline: Instant,
    },
    /// Reading the request line + headers. The deadline is fixed when
    /// the first byte arrives; expiry answers 408.
    ReadingHead {
        /// The head-stall deadline (never extended).
        deadline: Instant,
    },
    /// Reading `Content-Length` body bytes; the deadline resets on each
    /// read with progress. Expiry answers 408.
    ReadingBody {
        /// The body-stall deadline.
        deadline: Instant,
    },
    /// The parsed request is on a worker; no socket interest.
    Executing,
    /// Flushing the serialized response; expiry (peer not reading)
    /// closes abruptly, like a write timeout did.
    Writing {
        /// The write-stall deadline.
        deadline: Instant,
    },
    /// Lingering close after a protocol error: write side shut, unread
    /// input drained (bounded) so the error response isn't lost to RST.
    Draining {
        /// Hard stop for the drain.
        deadline: Instant,
        /// Bytes of unread input still tolerated.
        budget: usize,
    },
}

/// What to do once the pending response buffer is flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AfterWrite {
    /// Back to `Idle` (or straight into the next pipelined request).
    KeepAlive,
    /// Plain close: `Connection: close`, request cap, or drain.
    Close,
    /// Lingering close: protocol-error responses.
    Linger,
}

/// The reactor's marching orders after a connection event.
#[derive(Debug)]
pub(crate) enum Directive {
    /// Nothing to hand off; re-arm interest per [`Connection::interest`].
    Continue,
    /// A complete request to dispatch to the worker pool. The `bool` is
    /// whether the response must close the connection (client asked,
    /// request cap reached, or the server is draining).
    Dispatch(Request, bool),
    /// Deregister and drop the connection now.
    Close,
}

/// Socket readiness the connection currently needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Interest {
    /// No events (state `Executing`).
    None,
    /// Readable.
    Read,
    /// Writable.
    Write,
}

/// Everything a connection needs from its server to make decisions.
pub(crate) struct ConnContext<'a> {
    /// Idle / stall timeout (the `--idle-timeout` knob).
    pub idle_timeout: Duration,
    /// Requests served before the connection is closed.
    pub max_requests: usize,
    /// Whether the server is draining for shutdown: finished responses
    /// close instead of going back to `Idle`.
    pub draining: bool,
    /// Serve metrics (keep-alive reuse, parse-error statuses).
    pub metrics: &'a Metrics,
}

/// One live connection owned by the reactor's slab.
#[derive(Debug)]
pub(crate) struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    state: ConnState,
    /// Bytes read past the end of the last parsed request (pipelining).
    inbuf: Vec<u8>,
    /// Serialized response waiting to be flushed.
    out: Vec<u8>,
    written: usize,
    after_write: AfterWrite,
    /// Requests completed on this connection.
    served: usize,
    /// Generation stamp: completions carry it so a slab slot reused
    /// after a force-close can't receive a stale response.
    gen: u64,
    /// State transitions, recorded into the metrics histogram at close.
    transitions: u64,
}

impl Connection {
    /// Wraps an admitted (already non-blocking) socket, starting `Idle`.
    pub fn new(stream: TcpStream, gen: u64, now: Instant, idle_timeout: Duration) -> Self {
        Connection {
            stream,
            parser: RequestParser::new(MAX_HEAD_BYTES),
            state: ConnState::Idle {
                deadline: now + idle_timeout,
            },
            inbuf: Vec::new(),
            out: Vec::new(),
            written: 0,
            after_write: AfterWrite::KeepAlive,
            served: 0,
            gen: 0,
            transitions: 0,
        }
        .with_gen(gen)
    }

    fn with_gen(mut self, gen: u64) -> Self {
        self.gen = gen;
        self
    }

    /// This connection's generation stamp.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// The socket's file descriptor, for poller registration.
    pub fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// Transitions made so far (recorded at close).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The readiness this connection's state wants from the poller.
    pub fn interest(&self) -> Interest {
        match self.state {
            ConnState::Idle { .. }
            | ConnState::ReadingHead { .. }
            | ConnState::ReadingBody { .. }
            | ConnState::Draining { .. } => Interest::Read,
            ConnState::Executing => Interest::None,
            ConnState::Writing { .. } => Interest::Write,
        }
    }

    /// The instant at which [`Connection::on_deadline`] must run, if any.
    pub fn deadline(&self) -> Option<Instant> {
        match self.state {
            ConnState::Idle { deadline }
            | ConnState::ReadingHead { deadline }
            | ConnState::ReadingBody { deadline }
            | ConnState::Writing { deadline }
            | ConnState::Draining { deadline, .. } => Some(deadline),
            ConnState::Executing => None,
        }
    }

    /// Whether the connection is parked between requests (drain closes
    /// these immediately — no request is in flight).
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ConnState::Idle { .. })
    }

    fn set_state(&mut self, next: ConnState) {
        if std::mem::discriminant(&self.state) != std::mem::discriminant(&next) {
            self.transitions += 1;
        }
        self.state = next;
    }

    /// The socket is readable: pull bytes, feed the parser, transition.
    pub fn on_readable(&mut self, ctx: &ConnContext<'_>) -> Directive {
        if matches!(self.state, ConnState::Draining { .. }) {
            return self.drain_readable();
        }
        if !matches!(
            self.state,
            ConnState::Idle { .. } | ConnState::ReadingHead { .. } | ConnState::ReadingBody { .. }
        ) {
            // Spurious readiness (e.g. an event already queued when the
            // state moved on): ignore, the state's interest stands.
            return Directive::Continue;
        }
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    // Peer EOF. Before the first byte of a request this
                    // is a normal keep-alive close; mid-request it is a
                    // protocol error that still deserves its response.
                    if !self.parser.started() {
                        return Directive::Close;
                    }
                    return self.fail(self.parser.eof_error(), ctx);
                }
                Ok(n) => match self.feed(&scratch[..n], ctx) {
                    Directive::Continue => match self.state {
                        // A parse error mid-chunk flips the state to
                        // Draining (the 4xx is already flushed): the
                        // rest of the input is discard, not requests.
                        ConnState::Draining { .. } => return self.drain_readable(),
                        ConnState::Idle { .. }
                        | ConnState::ReadingHead { .. }
                        | ConnState::ReadingBody { .. } => continue,
                        // Any other state ends the read loop: a parse
                        // error whose 4xx hit WouldBlock parks in
                        // Writing, and reading on would feed the
                        // already-errored parser and clobber the
                        // half-written response. Interest re-arms per
                        // the new state.
                        ConnState::Executing | ConnState::Writing { .. } => {
                            return Directive::Continue
                        }
                    },
                    other => return other,
                },
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Directive::Continue,
                Err(e) => {
                    if !self.parser.started() {
                        return Directive::Close;
                    }
                    return self.fail(HttpError::bad_request(format!("read error: {e}")), ctx);
                }
            }
        }
    }

    /// Feeds bytes (buffered leftovers first) into the parser and
    /// applies the resulting transition.
    fn feed(&mut self, bytes: &[u8], ctx: &ConnContext<'_>) -> Directive {
        let input: Vec<u8> = if self.inbuf.is_empty() {
            bytes.to_vec()
        } else {
            let mut v = std::mem::take(&mut self.inbuf);
            v.extend_from_slice(bytes);
            v
        };
        match self.parser.feed(&input) {
            Err(e) => self.fail(e, ctx),
            Ok((consumed, maybe_request)) => {
                self.inbuf = input[consumed..].to_vec();
                match maybe_request {
                    Some(request) => self.on_request(request, ctx),
                    None => {
                        self.note_read_progress(ctx);
                        Directive::Continue
                    }
                }
            }
        }
    }

    /// Byte progress without a complete request: pick the right reading
    /// state and deadline.
    fn note_read_progress(&mut self, ctx: &ConnContext<'_>) {
        let now = Instant::now();
        if !self.parser.started() {
            // Nothing of the next request yet (e.g. just finished a
            // response): park idle.
            if !matches!(self.state, ConnState::Idle { .. }) {
                self.set_state(ConnState::Idle {
                    deadline: now + ctx.idle_timeout,
                });
            }
        } else if self.parser.in_head() {
            // The head deadline is fixed at the first byte: trickling
            // one byte per interval must not push it out.
            if !matches!(self.state, ConnState::ReadingHead { .. }) {
                self.set_state(ConnState::ReadingHead {
                    deadline: now + ctx.idle_timeout,
                });
            }
        } else {
            // Body reads refresh the deadline on progress, like the
            // per-read socket timeout they replace.
            self.set_state(ConnState::ReadingBody {
                deadline: now + ctx.idle_timeout,
            });
        }
    }

    /// A complete request: count it, decide the close bit, hand it up.
    fn on_request(&mut self, request: Request, ctx: &ConnContext<'_>) -> Directive {
        if self.served > 0 {
            ctx.metrics.keepalive_reuse.inc();
        }
        self.served += 1;
        let close = !request.keep_alive() || self.served >= ctx.max_requests || ctx.draining;
        self.set_state(ConnState::Executing);
        Directive::Dispatch(request, close)
    }

    /// A protocol failure: record it, queue the error response, and
    /// linger-close. No access-log line and no SLO sample — only the
    /// status counters — exactly like the blocking path.
    fn fail(&mut self, error: HttpError, ctx: &ConnContext<'_>) -> Directive {
        if matches!(
            self.state,
            ConnState::Writing { .. } | ConnState::Draining { .. }
        ) {
            // A response is already queued or on the wire; a second
            // failure must never reset the write buffer under it.
            return Directive::Continue;
        }
        let response = Response::from(error);
        ctx.metrics.record_request(response.status, Duration::ZERO);
        let mut bytes = Vec::with_capacity(256);
        response
            .write_to(&mut bytes)
            .expect("serializing to a Vec cannot fail");
        self.start_write(bytes, AfterWrite::Linger, ctx)
    }

    /// A response is ready (from a worker completion or an inline
    /// error): try to flush it in one write, falling back to `Writing`
    /// state if the socket is full.
    pub fn start_write(
        &mut self,
        bytes: Vec<u8>,
        after: AfterWrite,
        ctx: &ConnContext<'_>,
    ) -> Directive {
        self.out = bytes;
        self.written = 0;
        self.after_write = after;
        self.set_state(ConnState::Writing {
            deadline: Instant::now() + ctx.idle_timeout,
        });
        self.on_writable(ctx)
    }

    /// The socket is writable: flush what's pending.
    pub fn on_writable(&mut self, ctx: &ConnContext<'_>) -> Directive {
        if !matches!(self.state, ConnState::Writing { .. }) {
            return Directive::Continue;
        }
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => return Directive::Close,
                Ok(n) => {
                    self.written += n;
                    self.set_state(ConnState::Writing {
                        deadline: Instant::now() + ctx.idle_timeout,
                    });
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Directive::Continue,
                Err(_) => return Directive::Close,
            }
        }
        self.out = Vec::new();
        self.written = 0;
        self.response_flushed(ctx)
    }

    /// The whole response is on the wire: close, linger, or go look for
    /// the next request.
    fn response_flushed(&mut self, ctx: &ConnContext<'_>) -> Directive {
        match self.after_write {
            AfterWrite::Close => Directive::Close,
            AfterWrite::Linger => {
                let _ = self.stream.shutdown(std::net::Shutdown::Write);
                self.set_state(ConnState::Draining {
                    deadline: Instant::now() + DRAIN_TIMEOUT,
                    budget: DRAIN_BUDGET_BYTES,
                });
                Directive::Continue
            }
            AfterWrite::KeepAlive => {
                if ctx.draining {
                    // Shutdown arrived while this response was in
                    // flight: the request got its answer, now close.
                    return Directive::Close;
                }
                self.set_state(ConnState::Idle {
                    deadline: Instant::now() + ctx.idle_timeout,
                });
                if self.inbuf.is_empty() {
                    Directive::Continue
                } else {
                    // The client pipelined: bytes past the last request
                    // are already here — parse without waiting for a
                    // readiness event that may never come.
                    self.feed(&[], ctx)
                }
            }
        }
    }

    /// Lingering-close drain: discard unread input until EOF, error,
    /// or the byte budget runs out.
    fn drain_readable(&mut self) -> Directive {
        let ConnState::Draining { deadline, budget } = self.state else {
            return Directive::Continue;
        };
        let mut budget = budget;
        let mut chunk = [0u8; 4096];
        loop {
            if budget == 0 {
                return Directive::Close;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Directive::Close,
                Ok(n) => budget = budget.saturating_sub(n),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.set_state(ConnState::Draining { deadline, budget });
                    return Directive::Continue;
                }
                Err(_) => return Directive::Close,
            }
        }
    }

    /// The state's deadline has passed. Idle and draining connections
    /// close without a word; a stalled head or body gets its 408; a
    /// peer that stopped reading its response gets cut off.
    pub fn on_deadline(&mut self, ctx: &ConnContext<'_>) -> Directive {
        match self.state {
            ConnState::Idle { .. } | ConnState::Draining { .. } | ConnState::Writing { .. } => {
                Directive::Close
            }
            ConnState::ReadingHead { .. } => {
                self.fail(HttpError::timeout("request head read past deadline"), ctx)
            }
            ConnState::ReadingBody { .. } => {
                self.fail(HttpError::timeout("timed out reading request body"), ctx)
            }
            ConnState::Executing => Directive::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    fn ctx(metrics: &Metrics) -> ConnContext<'_> {
        ConnContext {
            idle_timeout: Duration::from_secs(30),
            max_requests: 1000,
            draining: false,
            metrics,
        }
    }

    #[test]
    fn a_full_request_in_one_chunk_dispatches() {
        let metrics = Metrics::default();
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1, Instant::now(), Duration::from_secs(30));
        assert_eq!(conn.interest(), Interest::Read);
        client
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi")
            .unwrap();
        // Give loopback a moment to deliver.
        std::thread::sleep(Duration::from_millis(50));
        match conn.on_readable(&ctx(&metrics)) {
            Directive::Dispatch(req, close) => {
                assert_eq!(req.path, "/x");
                assert_eq!(req.body, b"hi");
                assert!(!close);
            }
            other => panic!("expected dispatch, got {other:?}"),
        }
        assert_eq!(conn.interest(), Interest::None, "executing wants no events");
    }

    #[test]
    fn trickled_head_keeps_one_fixed_deadline() {
        let metrics = Metrics::default();
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1, Instant::now(), Duration::from_secs(30));
        client.write_all(b"GET /").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let c = ctx(&metrics);
        assert!(matches!(conn.on_readable(&c), Directive::Continue));
        let first = conn.deadline().unwrap();
        client.write_all(b"healthz HT").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(matches!(conn.on_readable(&c), Directive::Continue));
        assert_eq!(
            conn.deadline().unwrap(),
            first,
            "head deadline must not move on trickled progress"
        );
    }

    #[test]
    fn pipelined_second_request_dispatches_after_the_first_response() {
        let metrics = Metrics::default();
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1, Instant::now(), Duration::from_secs(30));
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let c = ctx(&metrics);
        let Directive::Dispatch(req, _) = conn.on_readable(&c) else {
            panic!("first request should dispatch")
        };
        assert_eq!(req.path, "/a");
        // Response done → the pipelined /b must surface without a new
        // readiness event.
        let mut bytes = Vec::new();
        Response::json(b"{}".to_vec()).write_to(&mut bytes).unwrap();
        let Directive::Dispatch(req, _) = conn.start_write(bytes, AfterWrite::KeepAlive, &c) else {
            panic!("pipelined request should dispatch straight away")
        };
        assert_eq!(req.path, "/b");
        assert_eq!(metrics.keepalive_reuse.get(), 1);
    }

    #[test]
    fn a_parse_error_behind_a_full_send_buffer_stops_the_read_loop() {
        let metrics = Metrics::default();
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1, Instant::now(), Duration::from_secs(30));
        let c = ctx(&metrics);
        // A malformed request line with plenty of trailing bytes: the
        // read loop must stop at the error instead of feeding the
        // poisoned parser (which would clobber the pending response).
        let mut bad = b"BROKEN\r\n\r\n".to_vec();
        bad.resize(32 * 1024, b'x');
        client.write_all(&bad).unwrap();
        // Fill the server→client direction so the 4xx cannot flush and
        // the connection parks in Writing instead of Draining. The
        // kernel keeps moving send-buffer bytes into the client's
        // receive window for a while, so "full" only counts once a
        // write still blocks after a pause.
        let junk = [0u8; 64 * 1024];
        loop {
            match conn.stream.write(&junk) {
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(30));
                    match conn.stream.write(&junk) {
                        Ok(_) => continue,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) => panic!("filling the send buffer: {e}"),
                    }
                }
                Err(e) => panic!("filling the send buffer: {e}"),
            }
        }
        assert!(matches!(conn.on_readable(&c), Directive::Continue));
        assert_eq!(
            conn.interest(),
            Interest::Write,
            "the 4xx must stay parked in Writing"
        );
        assert_eq!(
            metrics.requests_failed.get(),
            1,
            "exactly one error response may be recorded"
        );
    }

    #[test]
    fn eof_before_any_byte_is_a_silent_close() {
        let metrics = Metrics::default();
        let (client, server) = pair();
        let mut conn = Connection::new(server, 1, Instant::now(), Duration::from_secs(30));
        drop(client);
        std::thread::sleep(Duration::from_millis(50));
        assert!(matches!(conn.on_readable(&ctx(&metrics)), Directive::Close));
        assert_eq!(metrics.requests_total.get(), 0, "no request was recorded");
    }

    #[test]
    fn deadline_in_head_answers_408_and_lingers() {
        let metrics = Metrics::default();
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1, Instant::now(), Duration::from_secs(30));
        client.write_all(b"GET /stall").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let c = ctx(&metrics);
        assert!(matches!(conn.on_readable(&c), Directive::Continue));
        assert!(matches!(conn.on_deadline(&c), Directive::Continue));
        // The 408 was flushed inline and the state moved to Draining.
        assert_eq!(metrics.timeouts.get(), 1);
        assert_eq!(conn.interest(), Interest::Read);
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reply = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match client.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => reply.extend_from_slice(&chunk[..n]),
            }
        }
        let text = String::from_utf8(reply).unwrap();
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
    }

    #[test]
    fn idle_deadline_closes_without_a_response() {
        let metrics = Metrics::default();
        let (client, server) = pair();
        let mut conn = Connection::new(server, 1, Instant::now(), Duration::from_secs(30));
        let c = ctx(&metrics);
        assert!(matches!(conn.on_deadline(&c), Directive::Close));
        assert_eq!(metrics.timeouts.get(), 0);
        drop(client);
    }

    #[test]
    fn transitions_count_state_changes_not_refreshes() {
        let metrics = Metrics::default();
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1, Instant::now(), Duration::from_secs(30));
        let c = ctx(&metrics);
        client.write_all(b"GET /").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        conn.on_readable(&c); // Idle → ReadingHead
        client.write_all(b"x HTT").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        conn.on_readable(&c); // stays ReadingHead
        assert_eq!(conn.transitions(), 1);
    }
}
