//! A minimal JSON value type with a recursive-descent parser and a
//! serializer — just enough for the service's request and response bodies.
//! No external dependencies; numbers are `f64` (like JavaScript), objects
//! preserve insertion order.
//!
//! The parser is depth-limited ([`MAX_DEPTH`]): recursion tracks the
//! nesting level, so a hostile body of 100k `[` characters is rejected
//! with [`JsonErrorKind::TooDeep`] instead of overflowing the worker
//! thread's stack.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(v) => write_number(out, *v),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders the value as compact JSON text (so `.to_string()` works too).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::String(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_number(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 round-trips and never emits exponent-less `inf`.
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Every `[` or `{` costs
/// one level; deeper documents are rejected before the recursion can
/// threaten the stack.
pub const MAX_DEPTH: usize = 128;

/// Classification of a [`JsonError`], so callers can count depth-limit
/// rejections separately from plain syntax errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Malformed input.
    Syntax,
    /// Structurally valid prefix, but nested past [`MAX_DEPTH`].
    TooDeep,
}

/// A JSON parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
    /// Whether this was a syntax error or a depth-limit rejection.
    pub kind: JsonErrorKind,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error. Nesting past [`MAX_DEPTH`] is rejected.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, MAX_DEPTH)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing content after document", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_owned(),
        offset,
        kind: JsonErrorKind::Syntax,
    }
}

fn too_deep(offset: usize) -> JsonError {
    JsonError {
        message: format!("nesting exceeds the depth limit of {MAX_DEPTH}"),
        offset,
        kind: JsonErrorKind::TooDeep,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", b as char), *pos))
    }
}

/// `depth` is the remaining nesting allowance; containers recurse with
/// one less and reject when it runs out.
fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{lit}'"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| err(&format!("bad number '{text}'"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err("unterminated string", *pos));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err("unterminated escape", *pos));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by \uDC00..\uDFFF.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        match ch {
                            Some(c) => out.push(c),
                            None => return Err(err("invalid unicode escape", *pos)),
                        }
                    }
                    _ => return Err(err("invalid escape", *pos - 1)),
                }
            }
            _ if b < 0x20 => return Err(err("raw control character in string", *pos - 1)),
            _ => {
                // Re-walk the UTF-8 sequence starting at this byte.
                let start = *pos - 1;
                let len = utf8_len(b);
                let end = start + len;
                let Some(slice) = bytes.get(start..end) else {
                    return Err(err("truncated UTF-8", start));
                };
                let s = std::str::from_utf8(slice).map_err(|_| err("invalid UTF-8", start))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let Some(slice) = bytes.get(*pos..*pos + 4) else {
        return Err(err("truncated \\u escape", *pos));
    };
    let text = std::str::from_utf8(slice).map_err(|_| err("bad \\u escape", *pos))?;
    let code = u32::from_str_radix(text, 16).map_err(|_| err("bad \\u escape", *pos))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth == 0 {
        return Err(too_deep(*pos));
    }
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth - 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth == 0 {
        return Err(too_deep(*pos));
    }
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth - 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let text = r#"{"name":"zip","units":["z1","z2"],"n":3,"ok":true,"none":null,"nested":[[1,2.5],[-3e2]]}"#;
        let doc = parse(text).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("zip"));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("units").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn string_escapes() {
        let doc = parse(r#""a\"b\\c\n\t\u0041\u00e9""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\n\tAé"));
        // Surrogate pair (😀 U+1F600).
        let doc = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("😀"));
        // Serializer escapes what it must.
        let j = Json::String("a\"b\n".to_owned());
        assert_eq!(j.to_string(), r#""a\"b\n""#);
        assert_eq!(parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn utf8_pass_through() {
        let doc = parse(r#""héllo — 世界""#).unwrap();
        assert_eq!(doc.as_str(), Some("héllo — 世界"));
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\":}",
            "nul",
            "1 2",
            "[1,]",
            "{,}",
            "\"\\q\"",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting_without_overflow() {
        // 100k open brackets: the seed parser recursed once per bracket
        // until the thread stack blew; now it's a TooDeep error.
        let hostile = "[".repeat(100_000);
        let e = parse(&hostile).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
        assert!(e.message.contains("depth limit"), "{e}");

        // Same for objects.
        let hostile = r#"{"a":"#.repeat(100_000);
        let e = parse(&hostile).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);

        // Exactly at the limit parses; one past it does not.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert_eq!(parse(&deep).unwrap_err().kind, JsonErrorKind::TooDeep);

        // Ordinary syntax errors keep the Syntax kind.
        assert_eq!(parse("[1,").unwrap_err().kind, JsonErrorKind::Syntax);
    }

    #[test]
    fn numbers_round_trip() {
        for v in [0.0, -1.5, 1e300, 123456.789, -0.001] {
            let j = Json::Number(v);
            let back = parse(&j.to_string()).unwrap();
            assert_eq!(back.as_f64(), Some(v));
        }
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
    }
}
