//! The readiness reactor: one thread, `O_NONBLOCK` sockets, and a
//! `poll(2)`/`epoll(7)` event loop, so an idle keep-alive connection
//! costs a slab slot and a file descriptor instead of a parked thread.
//!
//! Layout of the serve front end after this module (DESIGN.md §14):
//!
//! ```text
//!             accept            readiness events           completions
//!   clients ────────▶ reactor ◀────────────────── poller ◀──── wakeup pipe
//!                        │                                         ▲
//!                        │ ExecJob (parsed request)                │ 1 byte on
//!                        ▼                                         │ empty→busy
//!                  WorkerPool ──── route() ──▶ CompletionQueue ────┘
//! ```
//!
//! The reactor owns every socket. CPU-bound work (routing, sparse
//! algebra) never runs on the reactor thread: a parsed request is
//! dispatched to the [`WorkerPool`] as an [`ExecJob`], the worker
//! serializes the response and pushes a [`Completion`], and the
//! completion queue's notify callback writes one byte down the wakeup
//! pipe to pull the reactor out of its poll. Stale completions — the
//! connection was force-closed and its slab slot reused while the job
//! ran — are discarded by generation stamp.
//!
//! Syscalls go through a local `extern "C"` shim rather than a binding
//! crate: the workspace is std-only, and `poll`/`epoll_*` live in libc,
//! which every Rust binary already links.

use crate::conn::{AfterWrite, ConnContext, Connection, Directive, Interest};
use crate::http::Request;
use crate::server::shed_connection;
use crate::store::AppState;
use geoalign_exec::{CompletionQueue, WorkerPool};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which readiness backend drives the event loop
/// (`serve --event-loop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventLoopKind {
    /// `epoll(7)`: O(ready) per wakeup. The default on Linux; on other
    /// platforms it silently degrades to `poll`.
    #[default]
    Epoll,
    /// `poll(2)`: portable, O(registered) per wakeup. The fallback, and
    /// a debugging aid when epoll behavior is in question.
    Poll,
}

impl std::str::FromStr for EventLoopKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "epoll" => Ok(EventLoopKind::Epoll),
            "poll" => Ok(EventLoopKind::Poll),
            other => Err(format!("unknown event loop '{other}' (epoll|poll)")),
        }
    }
}

/// A parsed request on its way to a pool worker.
#[derive(Debug)]
pub(crate) struct ExecJob {
    /// Slab slot of the connection that read the request.
    pub token: usize,
    /// Generation stamp guarding against slot reuse.
    pub gen: u64,
    /// The request itself.
    pub request: Request,
    /// Whether the response must carry `Connection: close`.
    pub close: bool,
    /// Dispatch instant: request latency includes queue wait.
    pub t0: Instant,
}

/// A serialized response on its way back from a pool worker.
#[derive(Debug)]
pub(crate) struct Completion {
    /// Slab slot the response belongs to.
    pub token: usize,
    /// Generation stamp; mismatches are discarded.
    pub gen: u64,
    /// The full serialized HTTP response.
    pub bytes: Vec<u8>,
    /// Whether the connection closes after this response.
    pub close: bool,
}

/// Raw syscall shim. Only symbols libc already exports to every Rust
/// binary; no binding crate.
mod ffi {
    use std::os::raw::{c_int, c_ulong};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        // `nfds_t` is `unsigned long` on Linux, the only platform this
        // shim is exercised on (the epoll backend is cfg-gated the same
        // way).
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use std::os::raw::c_int;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x1;
        pub const EPOLLOUT: u32 = 0x4;
        pub const EPOLLERR: u32 = 0x8;
        pub const EPOLLHUP: u32 = 0x10;
        pub const EPOLLRDHUP: u32 = 0x2000;

        /// Mirrors `struct epoll_event`, which x86-64 declares packed.
        /// Fields must be read by value, never by reference.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn close(fd: c_int) -> c_int;
        }
    }
}

/// Readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Want {
    Read,
    Write,
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
struct Event {
    token: usize,
    readable: bool,
    writable: bool,
}

/// The polling backend: a uniform register/wait façade over `epoll`
/// (Linux) and `poll`. Both are level-triggered; a token with
/// [`Interest::None`] is *removed* so a half-open socket can't spin the
/// loop with events nobody consumes.
enum Poller {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        registered: HashMap<usize, (RawFd, Want)>,
    },
    Poll {
        registered: HashMap<usize, (RawFd, Want)>,
    },
}

impl Poller {
    fn new(kind: EventLoopKind) -> std::io::Result<Poller> {
        match kind {
            #[cfg(target_os = "linux")]
            EventLoopKind::Epoll => {
                let epfd = unsafe { ffi::epoll::epoll_create1(ffi::epoll::EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(std::io::Error::last_os_error());
                }
                Ok(Poller::Epoll {
                    epfd,
                    registered: HashMap::new(),
                })
            }
            #[cfg(not(target_os = "linux"))]
            EventLoopKind::Epoll => Ok(Poller::Poll {
                registered: HashMap::new(),
            }),
            EventLoopKind::Poll => Ok(Poller::Poll {
                registered: HashMap::new(),
            }),
        }
    }

    /// Upserts (or with `want: None`, removes) a token's registration.
    ///
    /// A rejected `EPOLL_CTL_ADD`/`MOD` (`ENOSPC` from
    /// `max_user_watches`, `EMFILE`, a dead fd) returns `Err` and leaves
    /// the token unregistered — never a phantom entry that would let the
    /// connection hang eventlessly until its deadline reaps it. Removal
    /// failures are ignored: the kernel drops epoll membership with the
    /// fd anyway.
    fn set(&mut self, token: usize, fd: RawFd, want: Option<Want>) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, registered } => {
                use ffi::epoll::*;
                let prev = registered.get(&token).copied();
                match (prev, want) {
                    (None, None) => {}
                    (Some(_), None) => {
                        registered.remove(&token);
                        let mut ev = EpollEvent { events: 0, data: 0 };
                        unsafe { epoll_ctl(*epfd, EPOLL_CTL_DEL, fd, &mut ev) };
                    }
                    (prev, Some(w)) => {
                        if prev.map(|(_, pw)| pw) == Some(w) {
                            return Ok(());
                        }
                        let mask = match w {
                            Want::Read => EPOLLIN | EPOLLRDHUP,
                            Want::Write => EPOLLOUT,
                        };
                        let mut ev = EpollEvent {
                            events: mask,
                            data: token as u64,
                        };
                        let op = if prev.is_some() {
                            EPOLL_CTL_MOD
                        } else {
                            EPOLL_CTL_ADD
                        };
                        if unsafe { epoll_ctl(*epfd, op, fd, &mut ev) } < 0 {
                            // A failed MOD leaves the kernel on the old
                            // mask; dropping the bookkeeping entry keeps
                            // our view pessimistic (caller closes).
                            registered.remove(&token);
                            return Err(std::io::Error::last_os_error());
                        }
                        registered.insert(token, (fd, w));
                    }
                }
            }
            Poller::Poll { registered } => match want {
                Some(w) => {
                    registered.insert(token, (fd, w));
                }
                None => {
                    registered.remove(&token);
                }
            },
        }
        Ok(())
    }

    /// Blocks until readiness or `timeout`, pushing events into `out`.
    /// `EINTR` retries internally. Returns the number of events.
    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> std::io::Result<usize> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                // Ceil so a 0.4ms-away deadline doesn't spin at 0ms.
                let extra = u128::from(d.subsec_nanos() % 1_000_000 != 0);
                d.as_millis().saturating_add(extra).min(i32::MAX as u128) as i32
            }
        };
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => {
                use ffi::epoll::*;
                let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
                let n = loop {
                    let n = unsafe {
                        epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = std::io::Error::last_os_error();
                    if err.kind() != ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in buf.iter().take(n) {
                    let ev = *ev; // copy out of the (packed) buffer slot
                    let bits = ev.events;
                    out.push(Event {
                        token: ev.data as usize,
                        readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                        writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    });
                }
                Ok(out.len())
            }
            Poller::Poll { registered } => {
                let mut fds: Vec<ffi::PollFd> = Vec::with_capacity(registered.len());
                let mut tokens: Vec<usize> = Vec::with_capacity(registered.len());
                for (&token, &(fd, want)) in registered.iter() {
                    fds.push(ffi::PollFd {
                        fd,
                        events: match want {
                            Want::Read => ffi::POLLIN,
                            Want::Write => ffi::POLLOUT,
                        },
                        revents: 0,
                    });
                    tokens.push(token);
                }
                let n = loop {
                    let n = unsafe {
                        ffi::poll(
                            fds.as_mut_ptr(),
                            fds.len() as std::os::raw::c_ulong,
                            timeout_ms,
                        )
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = std::io::Error::last_os_error();
                    if err.kind() != ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n > 0 {
                    for (pfd, &token) in fds.iter().zip(tokens.iter()) {
                        let bits = pfd.revents;
                        if bits == 0 {
                            continue;
                        }
                        out.push(Event {
                            token,
                            readable: bits
                                & (ffi::POLLIN | ffi::POLLHUP | ffi::POLLERR | ffi::POLLNVAL)
                                != 0,
                            writable: bits & (ffi::POLLOUT | ffi::POLLHUP | ffi::POLLERR) != 0,
                        });
                    }
                }
                Ok(out.len())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Poller::Epoll { epfd, .. } = self {
            unsafe { ffi::epoll::close(*epfd) };
        }
    }
}

/// Wakeup-pipe token (never a slab index).
const WAKE_TOKEN: usize = usize::MAX;
/// Listener token (never a slab index).
const LISTEN_TOKEN: usize = usize::MAX - 1;

/// Everything the reactor thread needs, handed over by
/// [`Server::bind_with_state`](crate::server::Server).
pub(crate) struct ReactorConfig {
    pub listener: TcpListener,
    pub state: Arc<AppState>,
    pub pool: Arc<WorkerPool<ExecJob>>,
    pub completions: Arc<CompletionQueue<Completion>>,
    pub wake_rx: UnixStream,
    pub stop: Arc<AtomicBool>,
    pub idle_timeout: Duration,
    pub max_requests: usize,
    /// Open-connection cap: `workers + max_connections`, matching the
    /// blocking front end's "being served + waiting" budget.
    pub capacity: usize,
    pub drain_timeout: Duration,
    pub event_loop: EventLoopKind,
}

/// Flips an accepted socket to the reactor's required modes. Returns
/// `false` (drop the connection) only when `O_NONBLOCK` cannot be set —
/// a blocking socket would hang the whole loop. A `TCP_NODELAY` failure
/// is counted but tolerated: it costs latency, not correctness.
pub(crate) fn configure_admitted(stream: &TcpStream, state: &AppState) -> bool {
    if stream.set_nonblocking(true).is_err() {
        state.metrics.sockopt_errors.inc();
        return false;
    }
    if stream.set_nodelay(true).is_err() {
        state.metrics.sockopt_errors.inc();
    }
    true
}

/// Spawns the reactor thread. Returns once the loop's poller and wakeup
/// plumbing are registered (the listener is already bound and
/// connectable before this is called).
pub(crate) fn spawn(config: ReactorConfig) -> std::io::Result<std::thread::JoinHandle<()>> {
    let mut reactor = Reactor::new(config)?;
    std::thread::Builder::new()
        .name("geoalign-reactor".to_string())
        .spawn(move || reactor.run())
}

struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: Vec<Option<Connection>>,
    free: Vec<usize>,
    next_gen: u64,
    /// Timer heap: `(deadline, token, gen)` entries, soonest first.
    /// Lazy deletion — a refreshed or closed connection leaves its stale
    /// entry behind, to be discarded when popped (the gen stamp and a
    /// re-check of the connection's live deadline filter it out). Each
    /// expiry therefore touches only due entries, O(log n) apiece,
    /// instead of sweeping the whole slab.
    timers: std::collections::BinaryHeap<std::cmp::Reverse<(Instant, usize, u64)>>,
    /// Latest armed deadline per slab slot — dedupes heap pushes so a
    /// busy connection re-syncing with an unchanged deadline doesn't
    /// grow the heap.
    armed: Vec<Option<Instant>>,
    state: Arc<AppState>,
    pool: Arc<WorkerPool<ExecJob>>,
    completions: Arc<CompletionQueue<Completion>>,
    stop: Arc<AtomicBool>,
    idle_timeout: Duration,
    max_requests: usize,
    capacity: usize,
    drain_timeout: Duration,
    draining: bool,
    drain_deadline: Option<Instant>,
    open: usize,
}

impl Reactor {
    fn new(config: ReactorConfig) -> std::io::Result<Reactor> {
        config.listener.set_nonblocking(true)?;
        config.wake_rx.set_nonblocking(true)?;
        let mut poller = Poller::new(config.event_loop)?;
        poller.set(LISTEN_TOKEN, config.listener.as_raw_fd(), Some(Want::Read))?;
        poller.set(WAKE_TOKEN, config.wake_rx.as_raw_fd(), Some(Want::Read))?;
        Ok(Reactor {
            poller,
            listener: Some(config.listener),
            wake_rx: config.wake_rx,
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            timers: std::collections::BinaryHeap::new(),
            armed: Vec::new(),
            state: config.state,
            pool: config.pool,
            completions: config.completions,
            stop: config.stop,
            idle_timeout: config.idle_timeout,
            max_requests: config.max_requests,
            capacity: config.capacity,
            drain_timeout: config.drain_timeout,
            draining: false,
            drain_deadline: None,
            open: 0,
        })
    }

    fn run(&mut self) {
        /// Consecutive poll failures tolerated (~1s at the 10ms backoff)
        /// before the loop gives up: a poller this broken delivers no
        /// events, so every connection is frozen — better to force-close
        /// them all and exit than to spin silently forever.
        const MAX_CONSECUTIVE_POLL_ERRORS: u32 = 100;
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut poll_failures = 0u32;
        loop {
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                if self.open == 0 {
                    break;
                }
                if let Some(dd) = self.drain_deadline {
                    if Instant::now() >= dd {
                        break; // force-close whatever is left
                    }
                }
            }
            let timeout = self.poll_timeout();
            match self.poller.wait(timeout, &mut events) {
                Ok(_) => poll_failures = 0,
                Err(_) => {
                    // EINTR is retried inside wait(); anything else is
                    // unexpected — count it, back off briefly so the
                    // loop can't busy-spin, and bail out entirely once
                    // the error proves persistent.
                    self.state.metrics.poller_errors.inc();
                    poll_failures += 1;
                    if poll_failures >= MAX_CONSECUTIVE_POLL_ERRORS {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            }
            self.state.metrics.poll_wakeups.inc();
            self.state.metrics.readiness_events.add(events.len() as u64);
            let batch = std::mem::take(&mut events);
            for ev in batch.iter().copied() {
                match ev.token {
                    WAKE_TOKEN => self.on_wake(),
                    LISTEN_TOKEN => self.on_accept(),
                    token => self.on_conn_event(token, ev),
                }
            }
            events = batch; // reclaim the buffer's capacity
            self.expire_deadlines();
        }
        // Drain over (or instant shutdown with no connections): close
        // everything still open, recording transition counts.
        for token in 0..self.conns.len() {
            if self.conns[token].is_some() {
                self.close_conn(token);
            }
        }
    }

    /// The poll timeout: time to the soonest timer entry (possibly a
    /// stale one — that only costs an early wakeup, never a late one) or
    /// the drain deadline, infinite when nothing is pending.
    fn poll_timeout(&self) -> Option<Duration> {
        let mut soonest = self.timers.peek().map(|std::cmp::Reverse((d, _, _))| *d);
        if let Some(dd) = self.drain_deadline {
            soonest = Some(soonest.map_or(dd, |d| d.min(dd)));
        }
        soonest.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Shutdown observed: stop accepting (drop the listener so the port
    /// refuses immediately), reap parked connections, and give in-flight
    /// requests until the drain deadline to finish.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.set(LISTEN_TOKEN, listener.as_raw_fd(), None);
        }
        for token in 0..self.conns.len() {
            if self.conns[token].as_ref().is_some_and(Connection::is_idle) {
                self.close_conn(token);
            }
        }
        self.drain_deadline = Some(Instant::now() + self.drain_timeout);
    }

    /// Wakeup-pipe readable: swallow the bytes, then apply every queued
    /// completion (and notice `stop`, checked at the top of the loop).
    fn on_wake(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
        for completion in self.completions.drain() {
            self.apply_completion(completion);
        }
    }

    fn apply_completion(&mut self, completion: Completion) {
        let Some(conn) = self
            .conns
            .get_mut(completion.token)
            .and_then(Option::as_mut)
        else {
            return; // connection force-closed while the job ran
        };
        if conn.gen() != completion.gen {
            return; // slot reused: response belongs to a dead connection
        }
        let after = if completion.close {
            AfterWrite::Close
        } else {
            AfterWrite::KeepAlive
        };
        let ctx = ConnContext {
            idle_timeout: self.idle_timeout,
            max_requests: self.max_requests,
            draining: self.draining,
            metrics: &self.state.metrics,
        };
        let directive = conn.start_write(completion.bytes, after, &ctx);
        self.apply(completion.token, directive);
    }

    /// Listener readable: accept the whole burst, shedding past the
    /// connection cap with the same 503 + `Retry-After` contract the
    /// blocking front end had.
    fn on_accept(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    if self.open >= self.capacity {
                        // Accepted sockets are blocking by default; shed
                        // writes with a 1s write timeout, unchanged.
                        shed_connection(stream, &self.state, "saturated");
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE, ECONNABORTED, …: count it and yield to the
                    // poller instead of spinning on a hot error.
                    self.state.metrics.accept_errors.inc();
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if !configure_admitted(&stream, &self.state) {
            return;
        }
        self.next_gen += 1;
        let now = Instant::now();
        let conn = Connection::new(stream, self.next_gen, now, self.idle_timeout);
        let token = match self.free.pop() {
            Some(t) => {
                self.conns[t] = Some(conn);
                t
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.open += 1;
        self.state.metrics.open_connections.add(1);
        self.sync(token);
    }

    fn on_conn_event(&mut self, token: usize, ev: Event) {
        if ev.readable {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            let ctx = ConnContext {
                idle_timeout: self.idle_timeout,
                max_requests: self.max_requests,
                draining: self.draining,
                metrics: &self.state.metrics,
            };
            let directive = conn.on_readable(&ctx);
            self.apply(token, directive);
        }
        if ev.writable {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            let ctx = ConnContext {
                idle_timeout: self.idle_timeout,
                max_requests: self.max_requests,
                draining: self.draining,
                metrics: &self.state.metrics,
            };
            let directive = conn.on_writable(&ctx);
            self.apply(token, directive);
        }
    }

    fn apply(&mut self, token: usize, directive: Directive) {
        match directive {
            Directive::Continue => self.sync(token),
            Directive::Close => self.close_conn(token),
            Directive::Dispatch(request, close) => {
                self.sync(token); // Executing → no socket interest
                let Some(gen) = self.conns[token].as_ref().map(Connection::gen) else {
                    return; // sync closed the connection (poller failure)
                };
                let job = ExecJob {
                    token,
                    gen,
                    request,
                    close,
                    t0: Instant::now(),
                };
                if !self.pool.submit(job) {
                    // Pool already shut down (shutdown race): nothing
                    // will answer this request; drop the connection.
                    self.close_conn(token);
                }
            }
        }
    }

    /// Re-arms the poller to the connection's current interest and the
    /// timer heap to its deadline. A kernel-rejected registration closes
    /// the connection: a socket the poller can't watch would otherwise
    /// hang eventlessly until its deadline reaped it.
    fn sync(&mut self, token: usize) {
        let Some(conn) = self.conns.get(token).and_then(Option::as_ref) else {
            return;
        };
        let want = match conn.interest() {
            Interest::None => None,
            Interest::Read => Some(Want::Read),
            Interest::Write => Some(Want::Write),
        };
        let fd = conn.raw_fd();
        let gen = conn.gen();
        let deadline = conn.deadline();
        if self.poller.set(token, fd, want).is_err() {
            self.state.metrics.poller_errors.inc();
            self.close_conn(token);
            return;
        }
        if let Some(d) = deadline {
            self.arm_timer(token, gen, d);
        }
    }

    /// Pushes a timer-heap entry for `(token, gen)` unless the slot's
    /// latest armed deadline already matches (dedupe). Stale entries are
    /// discarded lazily in [`Reactor::expire_deadlines`].
    fn arm_timer(&mut self, token: usize, gen: u64, deadline: Instant) {
        if self.armed.len() <= token {
            self.armed.resize(token + 1, None);
        }
        if self.armed[token] == Some(deadline) {
            return;
        }
        self.armed[token] = Some(deadline);
        self.timers.push(std::cmp::Reverse((deadline, token, gen)));
    }

    fn close_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.set(token, conn.raw_fd(), None);
        if let Some(slot) = self.armed.get_mut(token) {
            *slot = None;
        }
        self.state
            .metrics
            .conn_state_transitions
            .record_value(conn.transitions());
        self.state.metrics.open_connections.add(-1);
        self.open -= 1;
        self.free.push(token);
        // `conn` drops here, closing the socket.
    }

    /// Pops due timer entries and fires the expiries they stand for.
    /// Lazy deletion: an entry whose connection is gone, re-generationed,
    /// or whose live deadline moved later is discarded (the moved one
    /// re-armed at its true time) — only due entries are ever touched,
    /// so expiry cost is O(due · log n), not O(connections).
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        while let Some(&std::cmp::Reverse((due, token, gen))) = self.timers.peek() {
            if due > now {
                break;
            }
            self.timers.pop();
            if self.armed.get(token).copied().flatten() == Some(due) {
                self.armed[token] = None;
            }
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                continue; // closed since this entry was pushed
            };
            if conn.gen() != gen {
                continue; // slot reused by a newer connection
            }
            let Some(deadline) = conn.deadline() else {
                continue; // state moved to Executing: no deadline
            };
            if deadline > now {
                // The deadline was refreshed (e.g. body-read progress):
                // this entry fired early, re-arm at the real time.
                self.arm_timer(token, gen, deadline);
                continue;
            }
            let ctx = ConnContext {
                idle_timeout: self.idle_timeout,
                max_requests: self.max_requests,
                draining: self.draining,
                metrics: &self.state.metrics,
            };
            let directive = conn.on_deadline(&ctx);
            self.apply(token, directive);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::FromRawFd;

    #[test]
    fn event_loop_kind_parses_both_backends() {
        assert_eq!("epoll".parse::<EventLoopKind>(), Ok(EventLoopKind::Epoll));
        assert_eq!("poll".parse::<EventLoopKind>(), Ok(EventLoopKind::Poll));
        assert!("kqueue".parse::<EventLoopKind>().is_err());
    }

    #[test]
    fn a_sockopt_failure_on_a_non_socket_is_counted_not_fatal() {
        let state = AppState::new(4);
        // /dev/null takes O_NONBLOCK but rejects TCP_NODELAY with
        // ENOTSOCK: exactly the counted-but-tolerated path.
        let file = std::fs::File::open("/dev/null").unwrap();
        let fd = {
            use std::os::unix::io::IntoRawFd;
            file.into_raw_fd()
        };
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        assert!(configure_admitted(&stream, &state));
        assert_eq!(state.metrics.sockopt_errors.get(), 1);
    }

    #[test]
    fn a_healthy_socket_admits_without_counting_errors() {
        let state = AppState::new(4);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        assert!(configure_admitted(&stream, &state));
        assert_eq!(state.metrics.sockopt_errors.get(), 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn a_rejected_epoll_registration_is_an_error_not_a_phantom_entry() {
        let mut poller = Poller::new(EventLoopKind::Epoll).unwrap();
        // A dead fd: EPOLL_CTL_ADD gets EBADF from the kernel.
        let dead_fd = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            stream.as_raw_fd()
        }; // stream dropped → fd closed
        assert!(poller.set(9, dead_fd, Some(Want::Read)).is_err());
        // No phantom registration was recorded: deregistering is the
        // (None, None) no-op, and a wait sees nothing.
        assert!(poller.set(9, dead_fd, None).is_ok());
        let mut events = Vec::new();
        let n = poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn both_pollers_deliver_readiness_for_a_readable_socket() {
        for kind in [EventLoopKind::Epoll, EventLoopKind::Poll] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            let mut poller = Poller::new(kind).unwrap();
            poller.set(7, server.as_raw_fd(), Some(Want::Read)).unwrap();
            let mut events = Vec::new();
            // Nothing to read yet: a short wait times out empty.
            let n = poller
                .wait(Some(Duration::from_millis(10)), &mut events)
                .unwrap();
            assert_eq!(n, 0, "{kind:?} must time out with no data");
            use std::io::Write;
            client.write_all(b"x").unwrap();
            let n = poller
                .wait(Some(Duration::from_secs(5)), &mut events)
                .unwrap();
            assert_eq!(n, 1, "{kind:?} must report the readable socket");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            // Deregistration silences it even though data is pending.
            poller.set(7, server.as_raw_fd(), None).unwrap();
            let n = poller
                .wait(Some(Duration::from_millis(10)), &mut events)
                .unwrap();
            assert_eq!(n, 0, "{kind:?} must drop deregistered sockets");
        }
    }
}
