//! The TCP front end: a `std::net::TcpListener` accept loop feeding a
//! fixed [`WorkerPool`](geoalign_exec::WorkerPool) of request workers. No
//! async runtime — the request handlers are CPU-bound sparse algebra, so
//! a thread per in-flight request up to the pool size is the right shape.
//!
//! The pool size defaults to [`geoalign_exec::global_threads`], the same
//! process-wide budget the executor's parallel jobs draw from, so a serve
//! process has one thread knob (`GEOALIGN_THREADS` / `--threads`) instead
//! of two competing pools.

use crate::http::{read_request, Request, Response};
use crate::router::route;
use crate::store::AppState;
use geoalign_exec::WorkerPool;
use geoalign_obs::{begin_trace, new_trace_id, SpanRecord};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests. Defaults to the process-wide
    /// thread budget ([`geoalign_exec::global_threads`]).
    pub workers: usize,
    /// Capacity of the prepared-crosswalk cache.
    pub cache_capacity: usize,
    /// Path of the JSON-lines access log (`serve --access-log`); `None`
    /// disables access logging.
    pub access_log: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: geoalign_exec::global_threads(),
            cache_capacity: crate::store::DEFAULT_CACHE_CAPACITY,
            access_log: None,
        }
    }
}

/// A running server: its address, state handle, and shutdown control.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool<TcpStream>>>,
}

impl Server {
    /// Binds `addr` and starts accepting in background threads. Returns
    /// once the socket is bound (so the port is immediately connectable —
    /// handy for tests binding port 0).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        Self::bind_with_state(addr, config.clone(), AppState::new(config.cache_capacity))
    }

    /// Like [`Server::bind`] but serving pre-populated state.
    pub fn bind_with_state(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        state: Arc<AppState>,
    ) -> io::Result<Server> {
        if let Some(path) = &config.access_log {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            state.set_access_log(Box::new(file));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let pool = {
            let state = Arc::clone(&state);
            WorkerPool::new("geoalign-worker", config.workers, move |stream| {
                handle_connection(stream, &state)
            })
        };
        let pool_handle = Arc::new(pool);

        let accept_stop = Arc::clone(&stop);
        let accept_pool = Arc::clone(&pool_handle);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    // A submit can only fail after shutdown closed the
                    // pool; the connection is dropped with it.
                    Ok(s) => {
                        let _ = accept_pool.submit(s);
                    }
                    Err(_) => continue,
                }
            }
        });

        Ok(Server {
            addr: local_addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
            pool: Some(pool_handle),
        })
    }

    /// The bound address (with the OS-chosen port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (registry, cache, metrics).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Stops accepting, drains the workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // With the accept thread joined, this is the pool's last handle:
        // shutting it down drains queued connections and joins the workers
        // (the Arc's Drop would do the same, but do it explicitly).
        if let Some(pool) = self.pool.take().and_then(Arc::into_inner) {
            pool.shutdown();
        }
    }
}

/// Serves one connection: parse, route, respond, close.
///
/// Every parsed request runs under a trace scope keyed by its
/// `X-Trace-Id` header (one is generated when absent); the ID is echoed
/// in the response, and the spans finished while routing — the core's
/// per-phase spans among them — go into the access-log line.
fn handle_connection(mut stream: TcpStream, state: &Arc<AppState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let t0 = Instant::now();
    let response = match read_request(&mut stream) {
        Ok(Some(request)) => {
            let trace_id = request
                .header("x-trace-id")
                .map(str::to_owned)
                .unwrap_or_else(new_trace_id);
            let scope = begin_trace(&trace_id);
            let mut response = route(state, &request);
            let spans = scope.finish();
            response.set_header("X-Trace-Id", trace_id.clone());
            state.log_access(&access_log_line(
                &trace_id,
                &request,
                response.status,
                t0.elapsed(),
                &spans,
            ));
            response
        }
        Ok(None) => return, // client connected and went away
        Err(e) => Response::from(e),
    };
    state.metrics.record_request(response.status, t0.elapsed());
    let _ = response.write_to(&mut stream);
}

/// One JSON access-log line: the trace ID, request line, status, total
/// duration, and a `spans` array with each finished span's name and wall
/// time (the per-phase breakdown of `/crosswalk` requests).
fn access_log_line(
    trace_id: &str,
    request: &Request,
    status: u16,
    duration: Duration,
    spans: &[SpanRecord],
) -> String {
    use crate::json::Json;
    let span_entries: Vec<Json> = spans
        .iter()
        .map(|s| {
            Json::object([
                ("name", Json::from(s.name)),
                ("duration_micros", Json::Number(s.duration_micros as f64)),
            ])
        })
        .collect();
    Json::object([
        ("trace_id", Json::from(trace_id)),
        ("method", Json::from(request.method.as_str())),
        ("path", Json::from(request.path.as_str())),
        ("status", Json::Number(f64::from(status))),
        (
            "duration_micros",
            Json::Number(duration.as_micros().min(u128::from(u64::MAX)) as f64),
        ),
        ("spans", Json::Array(span_entries)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn send(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_health_and_counts_requests() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr();
        let reply = send(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains(r#""status":"ok""#));
        assert!(reply.contains(r#""uptime_seconds":"#));
        assert!(reply.contains("\r\nX-Trace-Id: "), "{reply}");
        let reply = send(addr, "GET /missing HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        let metrics = send(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(metrics.contains("\"requests_total\":"), "{metrics}");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let reply = send(server.addr(), "TOTALLY BOGUS\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                cache_capacity: 4,
                access_log: None,
            },
        )
        .unwrap();
        let addr = server.addr();
        send(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        server.shutdown();
        // The port stops accepting once the OS tears the listener down;
        // poll for refusal instead of guessing a fixed grace period.
        let mut refused = false;
        for _ in 0..200 {
            if TcpStream::connect(addr).is_err() {
                refused = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(refused, "listener should be closed after shutdown");
    }
}
