//! The TCP front end: a `std::net::TcpListener` accept loop feeding a
//! bounded [`WorkerPool`](geoalign_exec::WorkerPool) of request workers.
//! No async runtime — the request handlers are CPU-bound sparse algebra,
//! so a thread per in-flight connection up to the pool size is the right
//! shape.
//!
//! Connections are persistent: a worker loops `read_request` on its
//! connection, serving follow-up requests without fresh TCP handshakes,
//! until the client asks for `Connection: close`, the idle timeout
//! expires, or [`ServerConfig::max_requests_per_conn`] is reached. A
//! keep-alive connection therefore *pins* its worker, which is why the
//! submit queue is bounded: when every worker is busy and
//! [`ServerConfig::max_connections`] connections are already waiting,
//! new arrivals are shed with `503` + `Retry-After` instead of queueing
//! without limit.
//!
//! The pool size defaults to [`geoalign_exec::global_threads`], the same
//! process-wide budget the executor's parallel jobs draw from, so a serve
//! process has one thread knob (`GEOALIGN_THREADS` / `--threads`) instead
//! of two competing pools.

use crate::http::{read_request_limited, ReadLimits, Request, Response};
use crate::router::route;
use crate::store::AppState;
use geoalign_exec::{RejectedJob, WorkerPool};
use geoalign_obs::{begin_trace, new_trace_id, SpanRecord};
use std::io;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections. Defaults to the process-wide
    /// thread budget ([`geoalign_exec::global_threads`]).
    pub workers: usize,
    /// Capacity of the prepared-crosswalk cache.
    pub cache_capacity: usize,
    /// Path of the JSON-lines access log (`serve --access-log`); `None`
    /// disables access logging.
    pub access_log: Option<String>,
    /// Connections allowed to wait for a worker beyond the ones being
    /// served. Arrivals past this are shed with `503 Service
    /// Unavailable` + `Retry-After` (`serve --max-connections`).
    pub max_connections: usize,
    /// Socket read timeout, and so: how long an idle keep-alive
    /// connection holds its worker, and the deadline for a stalled
    /// request head (answered `408`). (`serve --idle-timeout`.)
    pub idle_timeout: Duration,
    /// Requests served over one connection before the server closes it
    /// (`Connection: close` on the last response), so no client can pin
    /// a worker forever (`serve --max-requests-per-conn`).
    pub max_requests_per_conn: usize,
    /// Directory of the durable store (`serve --data-dir`). When set, the
    /// server warm-starts its registry from disk at boot and persists
    /// registrations and prepared crosswalks; `None` serves from memory
    /// only.
    pub data_dir: Option<std::path::PathBuf>,
    /// Whether the `/debug/*` introspection routes (profile, spans, slow,
    /// threads) answer. Off by default — without `serve
    /// --debug-endpoints` they 404 like any unknown path, so
    /// introspection cannot leak in production config.
    pub debug_endpoints: bool,
}

/// Default queue bound for connections waiting on a worker.
pub const DEFAULT_MAX_CONNECTIONS: usize = 128;
/// Default socket read / idle timeout.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// Default requests-per-connection cap.
pub const DEFAULT_MAX_REQUESTS_PER_CONN: usize = 1000;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: geoalign_exec::global_threads(),
            cache_capacity: crate::store::DEFAULT_CACHE_CAPACITY,
            access_log: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            max_requests_per_conn: DEFAULT_MAX_REQUESTS_PER_CONN,
            data_dir: None,
            debug_endpoints: false,
        }
    }
}

/// A running server: its address, state handle, and shutdown control.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool<TcpStream>>>,
}

impl Server {
    /// Binds `addr` and starts accepting in background threads. Returns
    /// once the socket is bound (so the port is immediately connectable —
    /// handy for tests binding port 0).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let state = match &config.data_dir {
            Some(dir) => AppState::open_durable(dir, config.cache_capacity)
                .map_err(|e| io::Error::other(format!("opening durable store: {e}")))?,
            None => AppState::new(config.cache_capacity),
        };
        Self::bind_with_state(addr, config.clone(), state)
    }

    /// Like [`Server::bind`] but serving pre-populated state.
    pub fn bind_with_state(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        state: Arc<AppState>,
    ) -> io::Result<Server> {
        if let Some(path) = &config.access_log {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            state.set_access_log(Box::new(file));
        }
        state.set_debug_endpoints(config.debug_endpoints);
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let pool = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let idle_timeout = config.idle_timeout;
            let max_requests = config.max_requests_per_conn;
            WorkerPool::bounded(
                "geoalign-worker",
                config.workers,
                config.max_connections,
                move |stream| handle_connection(stream, &state, idle_timeout, max_requests, &stop),
            )
        };
        let pool_handle = Arc::new(pool);
        state.set_pool_stats(pool_handle.stats());

        let accept_stop = Arc::clone(&stop);
        let accept_pool = Arc::clone(&pool_handle);
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => match accept_pool.try_submit(s) {
                        Ok(()) => {}
                        // Workers and queue saturated: shed from the
                        // accept thread instead of queueing unboundedly.
                        Err(RejectedJob::Saturated(s)) => {
                            shed_connection(s, &accept_state, "saturated");
                        }
                        // The pool closed under shutdown while this
                        // connection was already accepted: tell the
                        // client to retry elsewhere instead of dropping
                        // the socket without a byte.
                        Err(RejectedJob::Closed(s)) => {
                            shed_connection(s, &accept_state, "draining");
                        }
                    },
                    Err(_) => continue,
                }
            }
        });

        Ok(Server {
            addr: local_addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
            pool: Some(pool_handle),
        })
    }

    /// The bound address (with the OS-chosen port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (registry, cache, metrics).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Stops accepting, drains the workers, and joins all threads.
    /// In-flight requests finish; keep-alive connections are told
    /// `Connection: close` on their next response instead of being cut
    /// mid-exchange.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // With the accept thread joined, this is the pool's last handle:
        // shutting it down drains queued connections and joins the workers
        // (the Arc's Drop would do the same, but do it explicitly).
        if let Some(pool) = self.pool.take().and_then(Arc::into_inner) {
            pool.shutdown();
        }
    }
}

/// Answers a connection the pool could not take — saturated queue or a
/// pool already draining for shutdown: `503` with a `Retry-After` hint,
/// written from the accept thread with a short write timeout so a slow
/// reader cannot stall accepting. Every shed lands one JSON line in the
/// access log (there is no request to log, so the line carries the
/// `reason` instead of a request line).
fn shed_connection(mut stream: TcpStream, state: &Arc<AppState>, reason: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut response = Response::error(503, "server saturated, retry shortly");
    response.connection_close = true;
    response.set_header("Retry-After", "1");
    state.metrics.shed.inc();
    state.metrics.record_request(503, Duration::ZERO);
    state.log_access(&shed_log_line(reason));
    let _ = response.write_to(&mut stream);
}

/// One JSON access-log line for a shed connection.
fn shed_log_line(reason: &str) -> String {
    use crate::json::Json;
    Json::object([
        ("event", Json::from("shed")),
        ("reason", Json::from(reason)),
        ("status", Json::Number(503.0)),
        ("retry_after_seconds", Json::Number(1.0)),
    ])
    .to_string()
}

/// Serves one connection: parse, route, respond — repeatedly, until the
/// client closes, asks to close, idles out, trips a limit, or the
/// per-connection request cap is reached.
///
/// Every parsed request runs under a trace scope keyed by its
/// `X-Trace-Id` header (one is generated when absent); the ID is echoed
/// in the response, and the spans finished while routing — the core's
/// per-phase spans among them — go into the access-log line.
fn handle_connection(
    stream: TcpStream,
    state: &Arc<AppState>,
    idle_timeout: Duration,
    max_requests: usize,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(idle_timeout));
    let _ = stream.set_write_timeout(Some(idle_timeout));
    // Responses must not sit in the kernel behind Nagle's algorithm
    // while the connection stays open for the next request.
    let _ = stream.set_nodelay(true);
    // A separate read handle: the buffered reader must persist across
    // requests (pipelined bytes live in its buffer) while responses are
    // written to the original stream.
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let limits = ReadLimits {
        max_head_bytes: crate::http::MAX_HEAD_BYTES,
        head_timeout: Some(idle_timeout),
    };
    let mut served = 0usize;
    loop {
        let outcome = read_request_limited(&mut reader, &limits);
        let t0 = Instant::now();
        match outcome {
            Ok(None) => return, // client closed or idled out between requests
            Ok(Some(request)) => {
                if served > 0 {
                    state.metrics.keepalive_reuse.inc();
                }
                served += 1;
                // Close after this response when the client asked to,
                // the per-connection cap is reached, or the server is
                // draining for shutdown.
                let close =
                    !request.keep_alive() || served >= max_requests || stop.load(Ordering::SeqCst);

                let trace_id = request
                    .header("x-trace-id")
                    .map(str::to_owned)
                    .unwrap_or_else(new_trace_id);
                let scope = begin_trace(&trace_id);
                let cost_scope = geoalign_obs::cost::begin();
                let mut response = route(state, &request);
                let cost = cost_scope.finish();
                let spans = scope.finish();
                response.set_header("X-Trace-Id", trace_id.clone());
                response.set_header("X-Cost", cost.header_value());
                response.connection_close = close;
                let elapsed = t0.elapsed();
                state.log_access(&access_log_line(
                    &trace_id,
                    &request,
                    response.status,
                    elapsed,
                    &spans,
                    &cost,
                ));
                state.metrics.record_request(response.status, elapsed);
                state.metrics.slo.record(&request.path, elapsed);
                if state.debug_endpoints_enabled() {
                    state.record_slow(crate::store::SlowEntry {
                        trace_id: trace_id.clone(),
                        method: request.method.clone(),
                        path: request.path.clone(),
                        status: response.status,
                        duration_micros: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                        spans,
                    });
                }
                if response.write_to(&mut stream).is_err() || close {
                    return;
                }
            }
            Err(e) => {
                // Limit violations and malformed requests: answer with
                // the assigned status (431/408/413/400) and close — the
                // stream position is unknown after a failed parse.
                let response = Response::from(e);
                state.metrics.record_request(response.status, t0.elapsed());
                let _ = response.write_to(&mut stream);
                lingering_close(&stream, &mut reader);
                return;
            }
        }
    }
}

/// Half-closes the write side and drains a bounded amount of unread
/// input before the socket is dropped. Closing with bytes still queued
/// in the receive buffer makes the kernel answer with RST, which can
/// discard the error response before the peer reads it; the drain turns
/// that into an orderly FIN while the byte cap and short timeout keep a
/// hostile peer from pinning the worker.
fn lingering_close(stream: &TcpStream, reader: &mut BufReader<TcpStream>) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut budget: usize = 1 << 20;
    let mut chunk = [0u8; 4096];
    while budget > 0 {
        match reader.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// One JSON access-log line: the trace ID, request line, status, total
/// duration, a `spans` array with each finished span's name and wall
/// time (the per-phase breakdown of `/crosswalk` requests), and the
/// request's resource `cost` (rows/cells/tasks/bytes; see
/// [`geoalign_obs::RequestCost`]).
fn access_log_line(
    trace_id: &str,
    request: &Request,
    status: u16,
    duration: Duration,
    spans: &[SpanRecord],
    cost: &geoalign_obs::RequestCost,
) -> String {
    use crate::json::Json;
    let span_entries: Vec<Json> = spans
        .iter()
        .map(|s| {
            Json::object([
                ("name", Json::from(s.name)),
                ("duration_micros", Json::Number(s.duration_micros as f64)),
            ])
        })
        .collect();
    Json::object([
        ("trace_id", Json::from(trace_id)),
        ("method", Json::from(request.method.as_str())),
        ("path", Json::from(request.path.as_str())),
        ("status", Json::Number(f64::from(status))),
        (
            "duration_micros",
            Json::Number(duration.as_micros().min(u128::from(u64::MAX)) as f64),
        ),
        ("spans", Json::Array(span_entries)),
        (
            "cost",
            Json::object([
                ("rows", Json::Number(cost.rows as f64)),
                ("cells", Json::Number(cost.cells as f64)),
                ("exec_tasks", Json::Number(cost.exec_tasks as f64)),
                ("alloc_bytes", Json::Number(cost.alloc_bytes as f64)),
            ]),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// One-shot client: sends `raw` and reads to EOF (with an explicit
    /// chunked loop — check.sh bans the unbounded read helpers in this
    /// crate), so requests must carry `Connection: close` (or trip an
    /// error) to terminate.
    fn send(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk).unwrap() {
                0 => break,
                n => out.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn serves_health_and_counts_requests() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr();
        let reply = send(
            addr,
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains(r#""status":"ok""#));
        assert!(reply.contains(r#""uptime_seconds":"#));
        assert!(reply.contains("\r\nX-Trace-Id: "), "{reply}");
        let reply = send(addr, "GET /missing HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        let metrics = send(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(metrics.contains("\"requests_total\":"), "{metrics}");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let reply = send(server.addr(), "TOTALLY BOGUS\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn http10_connections_close_by_default() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        // No Connection header at all: HTTP/1.0 defaults to close, so
        // read_to_string terminates without the client asking.
        let reply = send(server.addr(), "GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("Connection: close\r\n"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn shed_answers_503_with_retry_after_and_logs_the_event() {
        use std::sync::Mutex;
        // A connected socket pair through a throwaway listener: the
        // server half plays the connection the pool rejected.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_half, _) = listener.accept().unwrap();

        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let state = AppState::new(4);
        state.set_access_log(Box::new(SharedSink(Arc::clone(&log))));

        // The shutdown-race path: the pool closed with this connection
        // already accepted (RejectedJob::Closed).
        shed_connection(server_half, &state, "draining");

        let mut reply = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match client.read(&mut chunk).unwrap() {
                0 => break,
                n => reply.extend_from_slice(&chunk[..n]),
            }
        }
        let reply = String::from_utf8(reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
        assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
        assert!(reply.contains("Connection: close\r\n"), "{reply}");

        let logged = String::from_utf8(log.lock().unwrap().clone()).unwrap();
        assert!(logged.contains(r#""event":"shed""#), "{logged}");
        assert!(logged.contains(r#""reason":"draining""#), "{logged}");
        assert!(logged.contains(r#""status":503"#), "{logged}");
        assert_eq!(state.metrics.shed.get(), 1);
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        send(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        server.shutdown();
        // The port stops accepting once the OS tears the listener down;
        // poll for refusal instead of guessing a fixed grace period.
        let mut refused = false;
        for _ in 0..200 {
            if TcpStream::connect(addr).is_err() {
                refused = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(refused, "listener should be closed after shutdown");
    }
}
