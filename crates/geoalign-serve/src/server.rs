//! The TCP front end: a single-threaded readiness reactor
//! ([`crate::reactor`]) multiplexing every connection over non-blocking
//! sockets, feeding an *unbounded* [`WorkerPool`](geoalign_exec::WorkerPool)
//! of compute workers. No async runtime — the event loop is `poll(2)`/
//! `epoll(7)` behind a std-only FFI shim, and the request handlers stay
//! plain synchronous code on pool threads.
//!
//! Connections are persistent and cheap: an idle keep-alive connection
//! costs a slab slot and a file descriptor, not a thread, so `--workers`
//! bounds *compute concurrency* only. Admission is still bounded —
//! `workers + max_connections` sockets may be open; arrivals past that
//! are shed with `503` + `Retry-After` from the reactor, exactly as the
//! blocking front end shed them from its accept loop. The pool queue can
//! be unbounded precisely because each connection has at most one
//! request in flight: the connection cap is the queue bound.
//!
//! The pool size defaults to [`geoalign_exec::global_threads`], the same
//! process-wide budget the executor's parallel jobs draw from, so a serve
//! process has one thread knob (`GEOALIGN_THREADS` / `--threads`) instead
//! of two competing pools.

use crate::http::{Request, Response};
use crate::reactor::{self, Completion, EventLoopKind, ExecJob, ReactorConfig};
use crate::router::route;
use crate::store::AppState;
use geoalign_exec::{CompletionQueue, WorkerPool};
use geoalign_obs::{begin_trace, new_trace_id, SpanRecord};
use std::io;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling request compute. Defaults to the
    /// process-wide thread budget ([`geoalign_exec::global_threads`]).
    /// Bounds compute only — idle connections don't consume workers.
    pub workers: usize,
    /// Capacity of the prepared-crosswalk cache.
    pub cache_capacity: usize,
    /// Path of the JSON-lines access log (`serve --access-log`); `None`
    /// disables access logging.
    pub access_log: Option<String>,
    /// Connections admitted beyond the `workers` actively computable
    /// ones: the open-connection cap is `workers + max_connections`.
    /// Arrivals past it are shed with `503 Service Unavailable` +
    /// `Retry-After` (`serve --max-connections`).
    pub max_connections: usize,
    /// How long an idle keep-alive connection stays open, and the
    /// deadline for a stalled request head (answered `408`).
    /// (`serve --idle-timeout`.)
    pub idle_timeout: Duration,
    /// Requests served over one connection before the server closes it
    /// (`Connection: close` on the last response), so no client can pin
    /// a connection forever (`serve --max-requests-per-conn`).
    pub max_requests_per_conn: usize,
    /// How long shutdown waits for in-flight requests to finish before
    /// force-closing their connections (`serve --drain-timeout`). Idle
    /// connections close immediately when shutdown begins.
    pub drain_timeout: Duration,
    /// Readiness backend for the reactor (`serve --event-loop`):
    /// `epoll` (Linux default) or portable `poll`.
    pub event_loop: EventLoopKind,
    /// Directory of the durable store (`serve --data-dir`). When set, the
    /// server warm-starts its registry from disk at boot and persists
    /// registrations and prepared crosswalks; `None` serves from memory
    /// only.
    pub data_dir: Option<std::path::PathBuf>,
    /// Whether the `/debug/*` introspection routes (profile, spans, slow,
    /// threads) answer. Off by default — without `serve
    /// --debug-endpoints` they 404 like any unknown path, so
    /// introspection cannot leak in production config.
    pub debug_endpoints: bool,
}

/// Default connection headroom beyond the worker count.
pub const DEFAULT_MAX_CONNECTIONS: usize = 128;
/// Default socket read / idle timeout.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// Default requests-per-connection cap.
pub const DEFAULT_MAX_REQUESTS_PER_CONN: usize = 1000;
/// Default shutdown drain window for in-flight requests.
pub const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: geoalign_exec::global_threads(),
            cache_capacity: crate::store::DEFAULT_CACHE_CAPACITY,
            access_log: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            max_requests_per_conn: DEFAULT_MAX_REQUESTS_PER_CONN,
            drain_timeout: DEFAULT_DRAIN_TIMEOUT,
            event_loop: EventLoopKind::default(),
            data_dir: None,
            debug_endpoints: false,
        }
    }
}

/// A running server: its address, state handle, and shutdown control.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    reactor_thread: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool<ExecJob>>>,
    wake_tx: UnixStream,
}

impl Server {
    /// Binds `addr` and starts the reactor in a background thread.
    /// Returns once the socket is bound (so the port is immediately
    /// connectable — handy for tests binding port 0).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let state = match &config.data_dir {
            Some(dir) => AppState::open_durable(dir, config.cache_capacity)
                .map_err(|e| io::Error::other(format!("opening durable store: {e}")))?,
            None => AppState::new(config.cache_capacity),
        };
        Self::bind_with_state(addr, config.clone(), state)
    }

    /// Like [`Server::bind`] but serving pre-populated state.
    pub fn bind_with_state(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        state: Arc<AppState>,
    ) -> io::Result<Server> {
        if let Some(path) = &config.access_log {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            state.set_access_log(Box::new(file));
        }
        state.set_debug_endpoints(config.debug_endpoints);
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        // The wakeup pipe: workers (and shutdown) write one byte to pull
        // the reactor out of its poll. Both ends non-blocking; a full
        // pipe or a gone reactor makes the write a harmless error.
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        let completions = {
            let tx = wake_tx.try_clone()?;
            Arc::new(CompletionQueue::new(move || {
                let _ = (&tx).write(&[1]);
            }))
        };

        let pool = {
            let state = Arc::clone(&state);
            let completions = Arc::clone(&completions);
            let stop = Arc::clone(&stop);
            WorkerPool::new("geoalign-worker", config.workers, move |job| {
                handle_request(job, &state, &completions, &stop)
            })
        };
        let pool_handle = Arc::new(pool);
        state.set_pool_stats(pool_handle.stats());

        let reactor_thread = reactor::spawn(ReactorConfig {
            listener,
            state: Arc::clone(&state),
            pool: Arc::clone(&pool_handle),
            completions,
            wake_rx,
            stop: Arc::clone(&stop),
            idle_timeout: config.idle_timeout,
            max_requests: config.max_requests_per_conn,
            // "being computed + admitted beyond that", the same budget
            // the bounded pool queue used to enforce.
            capacity: config.workers + config.max_connections,
            drain_timeout: config.drain_timeout,
            event_loop: config.event_loop,
        })?;

        Ok(Server {
            addr: local_addr,
            state,
            stop,
            reactor_thread: Some(reactor_thread),
            pool: Some(pool_handle),
            wake_tx,
        })
    }

    /// The bound address (with the OS-chosen port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (registry, cache, metrics).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Stops accepting (the port refuses immediately), closes idle
    /// keep-alive connections, lets in-flight requests finish for up to
    /// [`ServerConfig::drain_timeout`], then joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // One byte down the wakeup pipe: the reactor notices `stop` the
        // moment it wakes, no listener-poke connection needed.
        let _ = (&self.wake_tx).write(&[1]);
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
        // With the reactor joined, this is the pool's last handle:
        // shutting it down drains queued jobs and joins the workers
        // (the Arc's Drop would do the same, but do it explicitly).
        if let Some(pool) = self.pool.take().and_then(Arc::into_inner) {
            pool.shutdown();
        }
    }
}

/// Runs one parsed request on a pool worker: route, observe, serialize,
/// and push the finished bytes back to the reactor.
///
/// Every request runs under a trace scope keyed by its `X-Trace-Id`
/// header (one is generated when absent); the ID is echoed in the
/// response, and the spans finished while routing — the core's
/// per-phase spans among them — go into the access-log line. The
/// request latency is measured from dispatch, so it includes any wait
/// in the pool queue.
fn handle_request(
    job: ExecJob,
    state: &Arc<AppState>,
    completions: &Arc<CompletionQueue<Completion>>,
    stop: &AtomicBool,
) {
    let ExecJob {
        token,
        gen,
        request,
        close,
        t0,
    } = job;
    let trace_id = request
        .header("x-trace-id")
        .map(str::to_owned)
        .unwrap_or_else(new_trace_id);
    let scope = begin_trace(&trace_id);
    let cost_scope = geoalign_obs::cost::begin();
    let mut response = route(state, &request);
    let cost = cost_scope.finish();
    let spans = scope.finish();
    // Shutdown may have begun while this request was queued or routing:
    // honor the old front end's promise that a draining keep-alive
    // connection is *told* `Connection: close` on its final response.
    let close = close || stop.load(Ordering::SeqCst);
    response.set_header("X-Trace-Id", trace_id.clone());
    response.set_header("X-Cost", cost.header_value());
    response.connection_close = close;
    let elapsed = t0.elapsed();
    state.log_access(&access_log_line(
        &trace_id,
        &request,
        response.status,
        elapsed,
        &spans,
        &cost,
    ));
    state.metrics.record_request(response.status, elapsed);
    state.metrics.slo.record(&request.path, elapsed);
    if state.debug_endpoints_enabled() {
        state.record_slow(crate::store::SlowEntry {
            trace_id: trace_id.clone(),
            method: request.method.clone(),
            path: request.path.clone(),
            status: response.status,
            duration_micros: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
            spans,
        });
    }
    let mut bytes = Vec::with_capacity(512);
    response
        .write_to(&mut bytes)
        .expect("serializing to a Vec cannot fail");
    completions.push(Completion {
        token,
        gen,
        bytes,
        close,
    });
}

/// Answers a connection the reactor could not admit — the open-connection
/// cap is reached or the server is draining: `503` with a `Retry-After`
/// hint, written with a short write timeout so a slow reader cannot
/// stall the reactor. Every shed lands one JSON line in the access log
/// (there is no request to log, so the line carries the `reason`
/// instead of a request line).
pub(crate) fn shed_connection(mut stream: TcpStream, state: &Arc<AppState>, reason: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut response = Response::error(503, "server saturated, retry shortly");
    response.connection_close = true;
    response.set_header("Retry-After", "1");
    state.metrics.shed.inc();
    state.metrics.record_request(503, Duration::ZERO);
    state.log_access(&shed_log_line(reason));
    let _ = response.write_to(&mut stream);
}

/// One JSON access-log line for a shed connection.
fn shed_log_line(reason: &str) -> String {
    use crate::json::Json;
    Json::object([
        ("event", Json::from("shed")),
        ("reason", Json::from(reason)),
        ("status", Json::Number(503.0)),
        ("retry_after_seconds", Json::Number(1.0)),
    ])
    .to_string()
}

/// One JSON access-log line: the trace ID, request line, status, total
/// duration, a `spans` array with each finished span's name and wall
/// time (the per-phase breakdown of `/crosswalk` requests), and the
/// request's resource `cost` (rows/cells/tasks/bytes; see
/// [`geoalign_obs::RequestCost`]).
fn access_log_line(
    trace_id: &str,
    request: &Request,
    status: u16,
    duration: Duration,
    spans: &[SpanRecord],
    cost: &geoalign_obs::RequestCost,
) -> String {
    use crate::json::Json;
    let span_entries: Vec<Json> = spans
        .iter()
        .map(|s| {
            Json::object([
                ("name", Json::from(s.name)),
                ("duration_micros", Json::Number(s.duration_micros as f64)),
            ])
        })
        .collect();
    Json::object([
        ("trace_id", Json::from(trace_id)),
        ("method", Json::from(request.method.as_str())),
        ("path", Json::from(request.path.as_str())),
        ("status", Json::Number(f64::from(status))),
        (
            "duration_micros",
            Json::Number(duration.as_micros().min(u128::from(u64::MAX)) as f64),
        ),
        ("spans", Json::Array(span_entries)),
        (
            "cost",
            Json::object([
                ("rows", Json::Number(cost.rows as f64)),
                ("cells", Json::Number(cost.cells as f64)),
                ("exec_tasks", Json::Number(cost.exec_tasks as f64)),
                ("alloc_bytes", Json::Number(cost.alloc_bytes as f64)),
            ]),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Instant;

    /// One-shot client: sends `raw` and reads to EOF (with an explicit
    /// chunked loop — check.sh bans the unbounded read helpers in this
    /// crate), so requests must carry `Connection: close` (or trip an
    /// error) to terminate.
    fn send(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk).unwrap() {
                0 => break,
                n => out.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn serves_health_and_counts_requests() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr();
        let reply = send(
            addr,
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains(r#""status":"ok""#));
        assert!(reply.contains(r#""uptime_seconds":"#));
        assert!(reply.contains("\r\nX-Trace-Id: "), "{reply}");
        let reply = send(addr, "GET /missing HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        let metrics = send(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(metrics.contains("\"requests_total\":"), "{metrics}");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let reply = send(server.addr(), "TOTALLY BOGUS\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn http10_connections_close_by_default() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        // No Connection header at all: HTTP/1.0 defaults to close, so
        // read_to_string terminates without the client asking.
        let reply = send(server.addr(), "GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("Connection: close\r\n"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn shed_answers_503_with_retry_after_and_logs_the_event() {
        use std::sync::Mutex;
        // A connected socket pair through a throwaway listener: the
        // server half plays the connection the reactor rejected.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_half, _) = listener.accept().unwrap();

        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let state = AppState::new(4);
        state.set_access_log(Box::new(SharedSink(Arc::clone(&log))));

        // The shutdown-race path: shutdown began with this connection
        // already accepted.
        shed_connection(server_half, &state, "draining");

        let mut reply = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match client.read(&mut chunk).unwrap() {
                0 => break,
                n => reply.extend_from_slice(&chunk[..n]),
            }
        }
        let reply = String::from_utf8(reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
        assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
        assert!(reply.contains("Connection: close\r\n"), "{reply}");

        let logged = String::from_utf8(log.lock().unwrap().clone()).unwrap();
        assert!(logged.contains(r#""event":"shed""#), "{logged}");
        assert!(logged.contains(r#""reason":"draining""#), "{logged}");
        assert!(logged.contains(r#""status":503"#), "{logged}");
        assert_eq!(state.metrics.shed.get(), 1);
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        send(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        server.shutdown();
        // The port stops accepting once the OS tears the listener down;
        // poll for refusal instead of guessing a fixed grace period.
        let mut refused = false;
        for _ in 0..200 {
            if TcpStream::connect(addr).is_err() {
                refused = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(refused, "listener should be closed after shutdown");
    }

    #[test]
    fn shutdown_waits_for_an_in_flight_request_then_closes() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                cache_capacity: 4,
                debug_endpoints: true,
                drain_timeout: Duration::from_secs(10),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // Park a request on a worker: /debug/profile sleeps ~1s.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /debug/profile?seconds=1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        // Give the reactor time to parse and dispatch it.
        std::thread::sleep(Duration::from_millis(200));
        let t0 = Instant::now();
        server.shutdown();
        let shutdown_took = t0.elapsed();
        // Shutdown must have waited for the profile to finish (~800ms
        // left of its second), not cut the connection...
        let mut reply = Vec::new();
        let mut chunk = [0u8; 4096];
        slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        loop {
            match slow.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => reply.extend_from_slice(&chunk[..n]),
            }
        }
        let reply = String::from_utf8(reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        // ...and the response of a drained connection says close even
        // though the client asked keep-alive.
        assert!(reply.contains("Connection: close\r\n"), "{reply}");
        assert!(
            shutdown_took < Duration::from_secs(5),
            "drain should end when the in-flight request does, took {shutdown_took:?}"
        );
    }

    #[test]
    fn shutdown_force_closes_past_the_drain_timeout() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                cache_capacity: 4,
                debug_endpoints: true,
                drain_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // A 3s in-flight request against a 200ms drain budget.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /debug/profile?seconds=3 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let t0 = Instant::now();
        server.shutdown();
        // The reactor must give up at the drain deadline; only the pool
        // join (the sleeping worker) extends past it, and the socket is
        // force-closed rather than answered.
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "shutdown must not hang on a stuck request"
        );
        slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut chunk = [0u8; 4096];
        loop {
            match slow.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    assert!(
                        !String::from_utf8_lossy(&chunk[..n]).starts_with("HTTP/1.1 200"),
                        "a force-closed connection must not receive the response"
                    );
                }
            }
        }
    }
}
