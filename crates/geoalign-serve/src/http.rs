//! A hand-rolled HTTP/1.1 subset on `std::io` — request parsing and
//! response writing for the crosswalk service. Connections are
//! persistent: the server loops [`read_request`] over one buffered
//! reader, honoring `Connection: close` and the HTTP/1.0 default.
//! Bodies are sized by `Content-Length`, no chunked encoding, no TLS.
//! Deliberately minimal: the service's clients are programs, not
//! browsers.
//!
//! Every read is bounded. The request line plus headers share a byte
//! budget ([`MAX_HEAD_BYTES`], answered with 431 when exceeded), bodies
//! are capped at [`MAX_BODY_BYTES`] (413), and a per-request deadline
//! turns a stalled read into 408 instead of a parked worker.

use std::io::{BufRead, ErrorKind, Write};
use std::time::{Duration, Instant};

/// Upper bound on accepted request bodies (16 MiB) — a guard against
/// unbounded allocation from a hostile or broken client.
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// Upper bound on the request line plus all headers together (64 KiB).
/// A client streaming bytes with no newline hits this and gets a 431
/// instead of growing a server-side buffer without limit.
pub const MAX_HEAD_BYTES: usize = 64 << 10;

/// Limits applied while reading one request.
#[derive(Debug, Clone)]
pub struct ReadLimits {
    /// Byte budget shared by the request line and every header line.
    pub max_head_bytes: usize,
    /// Wall-clock budget for the whole head, measured from the first
    /// byte. Enforced between socket reads, so its granularity is the
    /// socket read timeout.
    pub head_timeout: Option<Duration>,
}

impl Default for ReadLimits {
    fn default() -> Self {
        ReadLimits {
            max_head_bytes: MAX_HEAD_BYTES,
            head_timeout: None,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/crosswalk`).
    pub path: String,
    /// Raw query string, without the `?`; empty when absent.
    pub query: String,
    /// Protocol version as sent (`HTTP/1.1` or `HTTP/1.0`).
    pub version: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an
    /// explicit `Connection: close` / `Connection: keep-alive` token
    /// overrides either default.
    pub fn keep_alive(&self) -> bool {
        if let Some(value) = self.header("connection") {
            let has = |token: &str| {
                value
                    .split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case(token))
            };
            if has("close") {
                return false;
            }
            if has("keep-alive") {
                return true;
            }
        }
        self.version != "HTTP/1.0"
    }
}

/// A request-level protocol failure, carrying the status to answer with.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Human-readable message (sent in the JSON error body).
    pub message: String,
}

impl HttpError {
    /// A 400.
    pub fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    /// A 408 — the client stalled mid-request past the read deadline.
    pub fn timeout(message: impl Into<String>) -> Self {
        HttpError {
            status: 408,
            message: message.into(),
        }
    }

    /// A 431 — the request line + headers exceeded the head byte budget.
    pub fn head_too_large() -> Self {
        HttpError {
            status: 431,
            message: "request line and headers exceed the head byte limit".into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Whether an I/O error is a socket read timeout (both kinds appear,
/// depending on platform).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Which part of a request the [`RequestParser`] is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParsePhase {
    /// Waiting for (or mid-way through) the request line.
    RequestLine,
    /// Request line parsed; consuming header lines up to the blank line.
    Headers,
    /// Head complete; consuming `Content-Length` body bytes.
    Body,
}

/// An incremental HTTP/1.1 request parser: bytes go in as they arrive
/// (from a non-blocking socket or a buffered reader), a [`Request`]
/// comes out once complete. One parser instance lives per connection
/// and resets itself after each parsed request, so pipelined bytes
/// carry straight into the next one.
///
/// The byte budgets are identical to the blocking reader's: the request
/// line and all headers share `max_head_bytes` (431 past it, checked
/// without buffering the excess), each head line must be UTF-8 (400),
/// and bodies above [`MAX_BODY_BYTES`] get 413. Errors are terminal and
/// sticky: after an `Err` the parser is poisoned — every later feed
/// returns the same error, so a caller that accidentally re-feeds an
/// errored parser can never conjure a request out of poisoned state.
#[derive(Debug)]
pub struct RequestParser {
    max_head_bytes: usize,
    budget: usize,
    phase: ParsePhase,
    started: bool,
    /// The first error this parser returned; replayed on every feed
    /// after it, making errors terminal even for a buggy caller.
    poison: Option<HttpError>,
    line: Vec<u8>,
    method: String,
    path: String,
    query: String,
    version: String,
    headers: Vec<(String, String)>,
    content_length: usize,
    body: Vec<u8>,
}

impl RequestParser {
    /// A parser enforcing `max_head_bytes` across request line + headers.
    pub fn new(max_head_bytes: usize) -> Self {
        RequestParser {
            max_head_bytes,
            budget: max_head_bytes,
            phase: ParsePhase::RequestLine,
            started: false,
            poison: None,
            line: Vec::new(),
            method: String::new(),
            path: String::new(),
            query: String::new(),
            version: String::new(),
            headers: Vec::new(),
            content_length: 0,
            body: Vec::new(),
        }
    }

    /// Whether any byte of the current request has been consumed. While
    /// `false`, an EOF or a quiet socket is an idle keep-alive
    /// connection ending normally; once `true`, the same events are
    /// protocol errors ([`RequestParser::eof_error`] / 408).
    pub fn started(&self) -> bool {
        self.started
    }

    /// Whether the parser is still reading the request head (request
    /// line or headers) as opposed to the body — decides which stall
    /// deadline applies and which 408 message a timeout gets.
    pub fn in_head(&self) -> bool {
        self.phase != ParsePhase::Body
    }

    /// Consumes bytes from `buf`. Returns how many bytes were consumed
    /// and the completed request, if this chunk finished one. Bytes
    /// beyond a completed request are left unconsumed (the caller keeps
    /// them for the next call — that is how pipelining works); the
    /// parser is already reset for the next request when `Some` returns.
    pub fn feed(&mut self, buf: &[u8]) -> Result<(usize, Option<Request>), HttpError> {
        if let Some(poison) = &self.poison {
            return Err(poison.clone());
        }
        match self.feed_inner(buf) {
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
            ok => ok,
        }
    }

    fn feed_inner(&mut self, buf: &[u8]) -> Result<(usize, Option<Request>), HttpError> {
        let mut consumed = 0usize;
        while consumed < buf.len() {
            let rest = &buf[consumed..];
            match self.phase {
                ParsePhase::RequestLine | ParsePhase::Headers => {
                    self.started = true;
                    // Scan at most one byte past the budget: enough to
                    // notice the overflow without buffering the excess.
                    let scan = &rest[..rest.len().min(self.budget.saturating_add(1))];
                    match scan.iter().position(|&b| b == b'\n') {
                        Some(i) => {
                            if i + 1 > self.budget {
                                return Err(HttpError::head_too_large());
                            }
                            self.line.extend_from_slice(&scan[..i]);
                            self.budget -= i + 1;
                            consumed += i + 1;
                            if self.line.last() == Some(&b'\r') {
                                self.line.pop();
                            }
                            let text = String::from_utf8(std::mem::take(&mut self.line)).map_err(
                                |_| HttpError::bad_request("request head is not valid UTF-8"),
                            )?;
                            self.complete_line(text)?;
                        }
                        None => {
                            if scan.len() > self.budget {
                                return Err(HttpError::head_too_large());
                            }
                            self.line.extend_from_slice(scan);
                            self.budget -= scan.len();
                            consumed += scan.len();
                        }
                    }
                }
                ParsePhase::Body => {
                    let need = self.content_length - self.body.len();
                    let take = need.min(rest.len());
                    self.body.extend_from_slice(&rest[..take]);
                    consumed += take;
                }
            }
            if self.phase == ParsePhase::Body && self.body.len() == self.content_length {
                return Ok((consumed, Some(self.take_request())));
            }
        }
        // A zero-length chunk can still complete a request whose head
        // ended exactly at the previous chunk boundary with no body.
        if self.phase == ParsePhase::Body && self.body.len() == self.content_length {
            return Ok((consumed, Some(self.take_request())));
        }
        Ok((consumed, None))
    }

    /// The protocol error a peer EOF amounts to at the current position.
    /// Only meaningful once [`RequestParser::started`] is true — an EOF
    /// before the first byte is a normal keep-alive close, not an error.
    pub fn eof_error(&self) -> HttpError {
        match self.phase {
            _ if !self.line.is_empty() => HttpError::bad_request("connection closed mid-line"),
            ParsePhase::RequestLine | ParsePhase::Headers => {
                HttpError::bad_request("connection closed mid-headers")
            }
            ParsePhase::Body => HttpError::bad_request(format!(
                "short body: connection closed after {} of {} body bytes",
                self.body.len(),
                self.content_length
            )),
        }
    }

    /// One complete head line: the request line, a header, or the blank
    /// separator ending the head.
    fn complete_line(&mut self, text: String) -> Result<(), HttpError> {
        match self.phase {
            ParsePhase::RequestLine => {
                let mut parts = text.split_whitespace();
                let (Some(method), Some(target), Some(version)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(HttpError::bad_request(format!(
                        "malformed request line '{text}'"
                    )));
                };
                // A fourth token is smuggling-adjacent junk, not
                // whitespace noise.
                if parts.next().is_some() {
                    return Err(HttpError::bad_request(format!(
                        "trailing tokens after HTTP version in '{text}'"
                    )));
                }
                if !version.starts_with("HTTP/1.") {
                    return Err(HttpError {
                        status: 505,
                        message: format!("unsupported {version}"),
                    });
                }
                self.method = method.to_ascii_uppercase();
                match target.split_once('?') {
                    Some((p, q)) => {
                        self.path = p.to_owned();
                        self.query = q.to_owned();
                    }
                    None => {
                        self.path = target.to_owned();
                        self.query = String::new();
                    }
                }
                self.version = version.to_owned();
                self.phase = ParsePhase::Headers;
                Ok(())
            }
            ParsePhase::Headers if text.is_empty() => {
                // End of head. Duplicate Content-Length headers that
                // agree are tolerated; conflicting ones are the classic
                // request-smuggling vector.
                let mut content_length: Option<usize> = None;
                for (_, value) in self.headers.iter().filter(|(k, _)| k == "content-length") {
                    let n: usize = value
                        .parse()
                        .map_err(|_| HttpError::bad_request("unparsable Content-Length"))?;
                    match content_length {
                        Some(prev) if prev != n => {
                            return Err(HttpError::bad_request(
                                "conflicting duplicate Content-Length headers",
                            ));
                        }
                        _ => content_length = Some(n),
                    }
                }
                let content_length = content_length.unwrap_or(0);
                if content_length > MAX_BODY_BYTES {
                    return Err(HttpError {
                        status: 413,
                        message: "request body too large".into(),
                    });
                }
                self.content_length = content_length;
                self.body = Vec::with_capacity(content_length);
                self.phase = ParsePhase::Body;
                Ok(())
            }
            ParsePhase::Headers => {
                let Some((name, value)) = text.split_once(':') else {
                    return Err(HttpError::bad_request(format!("malformed header '{text}'")));
                };
                self.headers
                    .push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
                Ok(())
            }
            ParsePhase::Body => unreachable!("complete_line in body phase"),
        }
    }

    /// Takes the finished request and resets for the next one.
    fn take_request(&mut self) -> Request {
        let request = Request {
            method: std::mem::take(&mut self.method),
            path: std::mem::take(&mut self.path),
            query: std::mem::take(&mut self.query),
            version: std::mem::take(&mut self.version),
            headers: std::mem::take(&mut self.headers),
            body: std::mem::take(&mut self.body),
        };
        self.budget = self.max_head_bytes;
        self.phase = ParsePhase::RequestLine;
        self.started = false;
        self.line.clear();
        self.content_length = 0;
        request
    }
}

/// Reads and parses one request from `reader` with default limits.
/// `Ok(None)` means the client closed (or idled out) before sending
/// anything.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    read_request_limited(reader, &ReadLimits::default())
}

/// [`read_request`] with explicit [`ReadLimits`]. The reader persists
/// across calls on a keep-alive connection, so bytes the client
/// pipelined ahead stay buffered for the next request.
///
/// This is the blocking driver over [`RequestParser`] — the reactor
/// drives the same parser from readiness events, so the two paths
/// cannot drift apart on budgets or error mapping.
pub fn read_request_limited<R: BufRead>(
    reader: &mut R,
    limits: &ReadLimits,
) -> Result<Option<Request>, HttpError> {
    // Idle wait for the first byte: EOF or a read timeout here is a
    // normal end of a keep-alive connection, not a protocol error.
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Ok(None),
            Err(e) => return Err(HttpError::bad_request(format!("read error: {e}"))),
        }
    }
    let deadline = limits.head_timeout.map(|t| Instant::now() + t);
    let mut parser = RequestParser::new(limits.max_head_bytes);
    loop {
        if parser.in_head() {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(HttpError::timeout("request head read past deadline"));
                }
            }
        }
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return Err(HttpError::timeout(if parser.in_head() {
                    "timed out reading request head"
                } else {
                    "timed out reading request body"
                }));
            }
            Err(e) => return Err(HttpError::bad_request(format!("read error: {e}"))),
        };
        if buf.is_empty() {
            return Err(parser.eof_error());
        }
        let (consumed, done) = parser.feed(buf)?;
        reader.consume(consumed);
        if let Some(request) = done {
            return Ok(Some(request));
        }
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `X-Trace-Id`), written verbatim after
    /// the standard ones.
    pub headers: Vec<(String, String)>,
    /// Whether to advertise `Connection: close` (and close afterwards)
    /// instead of the keep-alive default.
    pub connection_close: bool,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 with a JSON body.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            headers: Vec::new(),
            connection_close: false,
            body: body.into(),
        }
    }

    /// A 200 with a plain-text body of the given `Content-Type` (used by
    /// the Prometheus exposition of `/metrics`).
    pub fn text(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type,
            headers: Vec::new(),
            connection_close: false,
            body: body.into(),
        }
    }

    /// An error response with a `{"error": ...}` JSON body.
    pub fn error(status: u16, message: &str) -> Self {
        let body = crate::json::Json::object([("error", crate::json::Json::from(message))]);
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            connection_close: false,
            body: body.to_string().into_bytes(),
        }
    }

    /// Appends an extra response header.
    pub fn set_header(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.headers.push((name.into(), value.into()));
    }

    /// Serializes the response onto `stream` as a single write, so a
    /// keep-alive socket never has a partial response stuck behind
    /// Nagle's algorithm waiting on a delayed ACK.
    pub fn write_to<S: Write>(&self, stream: &mut S) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let connection = if self.connection_close {
            "close"
        } else {
            "keep-alive"
        };
        let mut buf = Vec::with_capacity(256 + self.body.len());
        write!(
            buf,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            connection
        )?;
        for (name, value) in &self.headers {
            write!(buf, "{name}: {value}\r\n")?;
        }
        write!(buf, "\r\n")?;
        buf.extend_from_slice(&self.body);
        stream.write_all(&buf)?;
        stream.flush()
    }
}

impl From<HttpError> for Response {
    fn from(e: HttpError) -> Self {
        let mut resp = Response::error(e.status, &e.message);
        // A protocol failure leaves the stream position unknown; the
        // only safe follow-up is closing the connection.
        resp.connection_close = true;
        resp
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut &raw[..])
    }

    #[test]
    fn parses_post_with_body() {
        let raw =
            b"POST /crosswalk?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/crosswalk");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.body_text().unwrap(), "abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_stream_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn sequential_requests_parse_from_one_reader() {
        let mut reader: &[u8] = b"GET /healthz HTTP/1.1\r\n\r\nPOST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n";
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/x");
        assert_eq!(second.body, b"hi");
        let third = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(third.path, "/metrics");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse(b"BROKEN\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/1.1\r\nContent-Length: zep\r\n\r\n").is_err());
        // Body shorter than Content-Length.
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc").is_err());
    }

    #[test]
    fn parser_errors_are_sticky() {
        let mut parser = RequestParser::new(MAX_HEAD_BYTES);
        let first = parser.feed(b"BROKEN\r\n").unwrap_err();
        assert_eq!(first.status, 400);
        // Re-feeding a poisoned parser — even perfectly valid bytes —
        // must replay the original error, never yield a request.
        let again = parser.feed(b"GET / HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(again.status, first.status);
        assert_eq!(again.message, first.message);
    }

    #[test]
    fn rejects_trailing_request_line_tokens() {
        let e = parse(b"GET / HTTP/1.1 smuggled\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("trailing tokens"), "{e}");
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd";
        let e = parse(raw).unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("Content-Length"), "{e}");
        // Agreeing duplicates are tolerated (first one wins, they match).
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        assert_eq!(parse(raw).unwrap().unwrap().body, b"abc");
    }

    #[test]
    fn oversized_head_is_431_with_bounded_memory() {
        // A request line that never ends: rejected once the head budget
        // is spent, long before the 10 MiB "line" would be buffered.
        let mut raw = b"GET /".to_vec();
        raw.resize(raw.len() + (10 << 20), b'a');
        let limits = ReadLimits::default();
        let e = read_request_limited(&mut &raw[..], &limits).unwrap_err();
        assert_eq!(e.status, 431);

        // Unbounded header section: same verdict.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..10_000 {
            raw.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let e = read_request_limited(&mut &raw[..], &limits).unwrap_err();
        assert_eq!(e.status, 431);
    }

    #[test]
    fn head_within_budget_still_parses() {
        let raw = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";
        let limits = ReadLimits {
            max_head_bytes: raw.len(),
            head_timeout: None,
        };
        assert!(read_request_limited(&mut &raw[..], &limits)
            .unwrap()
            .is_some());
        let tight = ReadLimits {
            max_head_bytes: 10,
            head_timeout: None,
        };
        assert_eq!(
            read_request_limited(&mut &raw[..], &tight)
                .unwrap_err()
                .status,
            431
        );
    }

    #[test]
    fn keep_alive_defaults_follow_the_version() {
        let req = |version: &str, conn: Option<&str>| Request {
            method: "GET".into(),
            path: "/".into(),
            query: String::new(),
            version: version.into(),
            headers: conn
                .map(|v| vec![("connection".to_owned(), v.to_owned())])
                .unwrap_or_default(),
            body: Vec::new(),
        };
        assert!(req("HTTP/1.1", None).keep_alive());
        assert!(!req("HTTP/1.0", None).keep_alive());
        assert!(!req("HTTP/1.1", Some("close")).keep_alive());
        assert!(!req("HTTP/1.1", Some("Close")).keep_alive());
        assert!(req("HTTP/1.0", Some("keep-alive")).keep_alive());
        assert!(!req("HTTP/1.1", Some("keep-alive, close")).keep_alive());
    }

    #[test]
    fn response_serializes() {
        let mut out = Vec::new();
        Response::json(br#"{"ok":true}"#.to_vec())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        Response::error(404, "no such route")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains(r#"{"error":"no such route"}"#));
    }

    #[test]
    fn connection_close_is_advertised_when_set() {
        let mut resp = Response::json(br#"{}"#.to_vec());
        resp.connection_close = true;
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"), "{text}");
        // Error conversions close by default — the stream position after
        // a parse failure is unknown.
        let resp = Response::from(HttpError::head_too_large());
        assert_eq!(resp.status, 431);
        assert!(resp.connection_close);
    }

    #[test]
    fn new_reason_phrases_cover_the_hardening_statuses() {
        for (status, phrase) in [
            (408, "Request Timeout"),
            (429, "Too Many Requests"),
            (431, "Request Header Fields Too Large"),
            (503, "Service Unavailable"),
        ] {
            assert_eq!(reason_phrase(status), phrase);
        }
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut resp = Response::json(br#"{}"#.to_vec());
        resp.set_header("X-Trace-Id", "abc123");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Trace-Id: abc123\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
