//! A hand-rolled HTTP/1.1 subset on `std::io` — request parsing and
//! response writing for the crosswalk service. One request per
//! connection (`Connection: close`), bodies sized by `Content-Length`,
//! no chunked encoding, no TLS. Deliberately minimal: the service's
//! clients are programs, not browsers.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on accepted request bodies (16 MiB) — a guard against
/// unbounded allocation from a hostile or broken client.
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/crosswalk`).
    pub path: String,
    /// Raw query string, without the `?`; empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))
    }
}

/// A request-level protocol failure, carrying the status to answer with.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Human-readable message (sent in the JSON error body).
    pub message: String,
}

impl HttpError {
    /// A 400.
    pub fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Reads and parses one request from `stream`. `Ok(None)` means the
/// client closed the connection before sending anything.
pub fn read_request<S: Read>(stream: S) -> Result<Option<Request>, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(HttpError::bad_request(format!("read error: {e}"))),
    }
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad_request(format!(
            "malformed request line '{line}'"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError {
            status: 505,
            message: format!("unsupported {version}"),
        });
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let mut header_line = String::new();
        match reader.read_line(&mut header_line) {
            Ok(0) => return Err(HttpError::bad_request("connection closed mid-headers")),
            Ok(_) => {}
            Err(e) => return Err(HttpError::bad_request(format!("read error: {e}"))),
        }
        let header_line = header_line.trim_end_matches(['\r', '\n']);
        if header_line.is_empty() {
            break;
        }
        let Some((name, value)) = header_line.split_once(':') else {
            return Err(HttpError::bad_request(format!(
                "malformed header '{header_line}'"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| HttpError::bad_request("unparsable Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: "request body too large".into(),
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::bad_request(format!("short body: {e}")))?;

    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
    }))
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `X-Trace-Id`), written verbatim after
    /// the standard ones.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 with a JSON body.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A 200 with a plain-text body of the given `Content-Type` (used by
    /// the Prometheus exposition of `/metrics`).
    pub fn text(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An error response with a `{"error": ...}` JSON body.
    pub fn error(status: u16, message: &str) -> Self {
        let body = crate::json::Json::object([("error", crate::json::Json::from(message))]);
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.to_string().into_bytes(),
        }
    }

    /// Appends an extra response header.
    pub fn set_header(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.headers.push((name.into(), value.into()));
    }

    /// Serializes the response onto `stream`.
    pub fn write_to<S: Write>(&self, stream: &mut S) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(stream, "\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

impl From<HttpError> for Response {
    fn from(e: HttpError) -> Self {
        Response::error(e.status, &e.message)
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw =
            b"POST /crosswalk?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&raw[..]).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/crosswalk");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.body_text().unwrap(), "abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&raw[..]).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_stream_is_none() {
        assert!(read_request(&b""[..]).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(read_request(&b"BROKEN\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GET / HTTP/2\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GET / HTTP/1.1\r\nContent-Length: zep\r\n\r\n"[..]).is_err());
        // Body shorter than Content-Length.
        assert!(read_request(&b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc"[..]).is_err());
    }

    #[test]
    fn response_serializes() {
        let mut out = Vec::new();
        Response::json(br#"{"ok":true}"#.to_vec())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        Response::error(404, "no such route")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains(r#"{"error":"no such route"}"#));
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut resp = Response::json(br#"{}"#.to_vec());
        resp.set_header("X-Trace-Id", "abc123");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Trace-Id: abc123\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
