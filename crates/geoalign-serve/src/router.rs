//! Route dispatch and the endpoint handlers.
//!
//! | Method | Path          | Purpose                                        |
//! |--------|---------------|------------------------------------------------|
//! | POST   | `/systems`    | register a unit system                         |
//! | POST   | `/references` | register a reference crosswalk                 |
//! | POST   | `/ingest`     | fold a point batch into a streaming reference  |
//! | POST   | `/crosswalk`  | apply one crosswalk to a batch of attributes   |
//! | GET    | `/healthz`    | readiness: store size, uptime, build info      |
//! | GET    | `/metrics`    | counters, cache stats, latency histograms      |
//!
//! `/metrics` serves the JSON snapshot by default and Prometheus text
//! exposition when asked — either `GET /metrics?format=prometheus` or an
//! `Accept: text/plain` header.
//!
//! With [`crate::ServerConfig::debug_endpoints`] the introspection suite
//! `GET /debug/{profile,spans,slow,threads}` answers too (DESIGN.md §13);
//! without the flag the whole `/debug` prefix 404s like any unknown path.

use crate::http::{HttpError, Request, Response};
use crate::json::{self, Json};
use crate::store::AppState;
use geoalign_core::{CoreError, ReferenceData};
use geoalign_obs::{expo, Registry};
use geoalign_partition::{AggregateVector, DisaggregationMatrix};

/// `Content-Type` of the Prometheus text exposition format.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Dispatches one request to its handler. Never panics; every failure
/// becomes a JSON error response.
pub fn route(state: &AppState, req: &Request) -> Response {
    // The introspection suite answers only with `--debug-endpoints`;
    // without the flag the whole prefix 404s exactly like unknown paths,
    // so production config reveals nothing.
    if req.path == "/debug" || req.path.starts_with("/debug/") {
        return route_debug(state, req);
    }
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/systems") => post_systems(state, req),
        ("POST", "/references") => post_references(state, req),
        ("POST", "/ingest") => post_ingest(state, req),
        ("POST", "/crosswalk") => post_crosswalk(state, req),
        ("POST", "/checkpoint") => post_checkpoint(state),
        ("GET", "/healthz") => Ok(get_healthz(state)),
        ("GET", "/metrics") => Ok(get_metrics(state, req)),
        (_, "/systems" | "/references" | "/ingest" | "/crosswalk" | "/checkpoint") => {
            Ok(method_not_allowed(&req.method, "POST"))
        }
        (_, "/healthz" | "/metrics") => Ok(method_not_allowed(&req.method, "GET")),
        _ => Err(HttpError {
            status: 404,
            message: format!("no route for {}", req.path),
        }),
    };
    result.unwrap_or_else(Response::from)
}

/// Dispatch within `/debug/*` (gated on `--debug-endpoints`).
fn route_debug(state: &AppState, req: &Request) -> Response {
    let not_found = || {
        Response::from(HttpError {
            status: 404,
            message: format!("no route for {}", req.path),
        })
    };
    if !state.debug_endpoints_enabled() {
        return not_found();
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/debug/profile") => get_debug_profile(req),
        ("GET", "/debug/spans") => get_debug_spans(),
        ("GET", "/debug/slow") => get_debug_slow(state),
        ("GET", "/debug/threads") => get_debug_threads(state),
        (_, "/debug/profile" | "/debug/spans" | "/debug/slow" | "/debug/threads") => {
            method_not_allowed(&req.method, "GET")
        }
        _ => not_found(),
    }
}

/// A 405 carrying the `Allow` header RFC 9110 requires. The request was
/// fully parsed, so the connection stays open — unlike protocol errors,
/// where the stream position is unknown.
fn method_not_allowed(method: &str, allow: &'static str) -> Response {
    let mut resp = Response::error(405, &format!("method {method} not allowed"));
    resp.set_header("Allow", allow);
    resp
}

/// Parses the JSON body; a depth-limit rejection (stack-overflow guard)
/// is counted separately from plain syntax errors.
fn parse_body(state: &AppState, req: &Request) -> Result<Json, HttpError> {
    json::parse(req.body_text()?).map_err(|e| {
        if e.kind == json::JsonErrorKind::TooDeep {
            state.metrics.depth_limit_rejections.inc();
        }
        HttpError::bad_request(e.to_string())
    })
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, HttpError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| HttpError::bad_request(format!("missing string field '{key}'")))
}

fn array_field<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], HttpError> {
    doc.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| HttpError::bad_request(format!("missing array field '{key}'")))
}

fn core_error(e: &CoreError) -> HttpError {
    let status = match e {
        CoreError::UnknownReference { .. } => 404,
        CoreError::Persist { .. } => 500,
        _ => 400,
    };
    HttpError {
        status,
        message: e.to_string(),
    }
}

/// `POST /systems` — body `{"name": "zip", "units": ["z1", "z2", ...]}`.
fn post_systems(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    let doc = parse_body(state, req)?;
    let name = str_field(&doc, "name")?;
    let units: Vec<String> = array_field(&doc, "units")?
        .iter()
        .map(|u| {
            u.as_str()
                .map(str::to_owned)
                .ok_or_else(|| HttpError::bad_request("'units' must be an array of strings"))
        })
        .collect::<Result<_, _>>()?;
    if units.is_empty() {
        return Err(HttpError::bad_request("'units' must not be empty"));
    }
    let n = units.len();
    // Write through before registering: a system the durable store never
    // saw would orphan every reference on it at the next warm start.
    state
        .persist_system(name, &units)
        .map_err(|e| core_error(&e))?;
    state.pipeline_mut().register_system(name, units);
    Ok(Response::json(
        Json::object([
            ("registered", Json::from(name)),
            ("units", Json::Number(n as f64)),
        ])
        .to_string()
        .into_bytes(),
    ))
}

/// `POST /references` — body
/// `{"source": "zip", "target": "county", "name": "population",
///   "entries": [["z1", "A", 100.0], ...]}`
/// where each entry is `[source unit id, target unit id, value]`.
fn post_references(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    let doc = parse_body(state, req)?;
    let source = str_field(&doc, "source")?;
    let target = str_field(&doc, "target")?;
    let name = str_field(&doc, "name")?;
    let entries = array_field(&doc, "entries")?;

    let mut pipeline = state.pipeline_mut();
    let source_ids = pipeline
        .unit_ids(source)
        .map_err(|e| core_error(&e))?
        .to_vec();
    let target_ids = pipeline
        .unit_ids(target)
        .map_err(|e| core_error(&e))?
        .to_vec();
    let find = |ids: &[String], id: &str, system: &str| -> Result<usize, HttpError> {
        ids.iter().position(|u| u == id).ok_or_else(|| {
            HttpError::bad_request(format!("unknown unit '{id}' in system '{system}'"))
        })
    };

    let mut triples = Vec::with_capacity(entries.len());
    for entry in entries {
        let fields = entry
            .as_array()
            .filter(|f| f.len() == 3)
            .ok_or_else(|| HttpError::bad_request("each entry must be [source, target, value]"))?;
        let s = fields[0]
            .as_str()
            .ok_or_else(|| HttpError::bad_request("entry source unit must be a string"))?;
        let t = fields[1]
            .as_str()
            .ok_or_else(|| HttpError::bad_request("entry target unit must be a string"))?;
        let v = fields[2]
            .as_f64()
            .ok_or_else(|| HttpError::bad_request("entry value must be a number"))?;
        triples.push((
            find(&source_ids, s, source)?,
            find(&target_ids, t, target)?,
            v,
        ));
    }

    let dm = DisaggregationMatrix::from_triples(name, source_ids.len(), target_ids.len(), triples)
        .map_err(|e| HttpError::bad_request(e.to_string()))?;
    let nnz = dm.nnz();
    let reference = ReferenceData::from_dm(name, dm).map_err(|e| core_error(&e))?;
    // Register before persisting: a record the registry rejected must
    // never reach the WAL, where it would fail replay at the next boot.
    pipeline
        .register_reference(source, target, reference.clone())
        .map_err(|e| core_error(&e))?;
    let count = pipeline.reference_count(source, target);
    // Persist while still holding the pipeline write lock: the durable
    // ref/<nnnnnnnn> index must be assigned in registration order, or a
    // warm start would replay concurrent registrations in a different
    // order than the cold pipeline saw them and break the byte-identical
    // warm-start guarantee. Registration is rare; the fsync under the
    // lock is acceptable.
    state
        .persist_reference(source, target, &reference)
        .map_err(|e| core_error(&e))?;
    drop(pipeline);
    Ok(Response::json(
        Json::object([
            ("registered", Json::from(name)),
            ("pair", Json::from(format!("{source}->{target}"))),
            ("nnz", Json::Number(nnz as f64)),
            ("references_for_pair", Json::Number(count as f64)),
        ])
        .to_string()
        .into_bytes(),
    ))
}

/// `POST /ingest` — body
/// `{"source": "zip", "target": "county", "attribute": "pop",
///   "points": [["z1", "A", 2.5], ...]}`
/// where each point is `[source unit id, target unit id, weight]`.
///
/// Folds the batch into the pair's streaming reference: the first batch
/// registers it, later batches merge into its state and replace it in
/// place, refreshing any cached prepared crosswalk through the
/// incremental delta path. Points naming unknown units are skipped and
/// counted (mirroring `OutsidePolicy::Skip`); negative or non-finite
/// weights reject the whole batch up front, so a batch is folded
/// all-or-nothing.
fn post_ingest(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    let doc = parse_body(state, req)?;
    let source = str_field(&doc, "source")?;
    let target = str_field(&doc, "target")?;
    let attribute = str_field(&doc, "attribute")?;
    let entries = array_field(&doc, "points")?;
    if entries.is_empty() {
        return Err(HttpError::bad_request("'points' must not be empty"));
    }

    let (source_ids, target_ids) = {
        let pipeline = state.pipeline();
        (
            pipeline
                .unit_ids(source)
                .map_err(|e| core_error(&e))?
                .to_vec(),
            pipeline
                .unit_ids(target)
                .map_err(|e| core_error(&e))?
                .to_vec(),
        )
    };

    let mut points = Vec::with_capacity(entries.len());
    let mut unknown = 0u64;
    for entry in entries {
        let fields = entry
            .as_array()
            .filter(|f| f.len() == 3)
            .ok_or_else(|| HttpError::bad_request("each point must be [source, target, weight]"))?;
        let s = fields[0]
            .as_str()
            .ok_or_else(|| HttpError::bad_request("point source unit must be a string"))?;
        let t = fields[1]
            .as_str()
            .ok_or_else(|| HttpError::bad_request("point target unit must be a string"))?;
        let w = fields[2]
            .as_f64()
            .ok_or_else(|| HttpError::bad_request("point weight must be a number"))?;
        if !w.is_finite() || w < 0.0 {
            return Err(HttpError::bad_request(format!(
                "point weight {w} must be finite and non-negative"
            )));
        }
        match (
            source_ids.iter().position(|u| u == s),
            target_ids.iter().position(|u| u == t),
        ) {
            (Some(si), Some(ti)) => points.push((si, ti, w)),
            _ => unknown += 1,
        }
    }

    state
        .metrics
        .ingest_batch_points
        .record_value(entries.len() as u64);
    let outcome = state
        .ingest(source, target, attribute, &points, unknown)
        .map_err(|e| core_error(&e))?;
    Ok(Response::json(
        Json::object([
            ("ingested", Json::from(attribute)),
            ("pair", Json::from(format!("{source}->{target}"))),
            ("absorbed", Json::Number(outcome.absorbed as f64)),
            ("skipped", Json::Number(outcome.skipped as f64)),
            ("total_points", Json::Number(outcome.total_points as f64)),
            ("total_skipped", Json::Number(outcome.total_skipped as f64)),
            (
                "references_for_pair",
                Json::Number(outcome.references_for_pair as f64),
            ),
            ("incremental", Json::Bool(outcome.incremental)),
            ("touched_rows", Json::Number(outcome.touched_rows as f64)),
        ])
        .to_string()
        .into_bytes(),
    ))
}

/// `POST /crosswalk` — body
/// `{"source": "zip", "target": "county",
///   "attributes": [{"name": "crimes", "values": [...]}, ...]}`
/// with `values` positional in the source system's registered unit order.
/// One prepared crosswalk (cached across requests) is applied to every
/// attribute in the batch.
fn post_crosswalk(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    let doc = parse_body(state, req)?;
    let source = str_field(&doc, "source")?;
    let target = str_field(&doc, "target")?;
    let attributes = array_field(&doc, "attributes")?;
    if attributes.is_empty() {
        return Err(HttpError::bad_request("'attributes' must not be empty"));
    }

    let (prepared, cache_hit) = state
        .prepared_crosswalk(source, target)
        .map_err(|e| core_error(&e))?;
    let target_units: Vec<Json> = {
        let pipeline = state.pipeline();
        let ids = pipeline.unit_ids(target).map_err(|e| core_error(&e))?;
        ids.iter().map(|id| Json::from(id.clone())).collect()
    };

    // Validate the whole batch up front, then hand it to the prepared
    // crosswalk in one `apply_batch` call so the executor can spread the
    // attributes over the process thread budget.
    let mut names = Vec::with_capacity(attributes.len());
    let mut vectors = Vec::with_capacity(attributes.len());
    for attr in attributes {
        let name = str_field(attr, "name")?;
        let values: Vec<f64> = array_field(attr, "values")?
            .iter()
            .map(|v| {
                v.as_f64().ok_or_else(|| {
                    HttpError::bad_request(format!("attribute '{name}': values must be numbers"))
                })
            })
            .collect::<Result<_, _>>()?;
        if values.len() != prepared.n_source() {
            return Err(HttpError::bad_request(format!(
                "attribute '{name}': {} values for {} source units",
                values.len(),
                prepared.n_source()
            )));
        }
        let vector = AggregateVector::new(name, values)
            .map_err(|e| HttpError::bad_request(format!("attribute '{name}': {e}")))?;
        names.push(name);
        vectors.push(vector);
    }

    let applied_batch = prepared.apply_batch(&vectors).map_err(|e| core_error(&e))?;
    let mut columns = Vec::with_capacity(attributes.len());
    for (name, applied) in names.into_iter().zip(applied_batch) {
        state.metrics.record_phases(&applied.timings);
        columns.push(Json::object([
            ("name", Json::from(name)),
            (
                "values",
                Json::Array(applied.estimate.into_iter().map(Json::Number).collect()),
            ),
            (
                "weights",
                Json::Array(applied.weights.into_iter().map(Json::Number).collect()),
            ),
        ]));
    }

    Ok(Response::json(
        Json::object([
            ("target_system", Json::from(target)),
            ("target_units", Json::Array(target_units)),
            ("cache_hit", Json::Bool(cache_hit)),
            ("columns", Json::Array(columns)),
        ])
        .to_string()
        .into_bytes(),
    ))
}

/// `POST /checkpoint` — flushes the write-behind persister, snapshots the
/// durable store, and truncates the WAL. `409` when the server runs
/// without `--data-dir` (there is nothing to checkpoint).
fn post_checkpoint(state: &AppState) -> Result<Response, HttpError> {
    let Some(backing) = state.durable() else {
        return Err(HttpError {
            status: 409,
            message: "no durable store: server started without --data-dir".to_owned(),
        });
    };
    let report = backing.checkpoint().map_err(|e| core_error(&e))?;
    Ok(Response::json(
        Json::object([
            ("seq", Json::Number(report.seq as f64)),
            ("records", Json::Number(report.records as f64)),
            ("snapshot_bytes", Json::Number(report.snapshot_bytes as f64)),
            (
                "wal_segments_removed",
                Json::Number(report.wal_segments_removed as f64),
            ),
        ])
        .to_string()
        .into_bytes(),
    ))
}

/// The `durability` object in `/healthz`: whether a durable store is
/// attached and, when it is, what recovery found at boot — replayed WAL
/// records, snapshot records, torn-tail and corruption repairs.
fn durability_json(state: &AppState) -> Json {
    let Some(backing) = state.durable() else {
        return Json::object([("enabled", Json::Bool(false))]);
    };
    let store = backing.store();
    let recovery = store.recovery();
    let opt_str = |s: &Option<String>| match s {
        Some(v) => Json::from(v.as_str()),
        None => Json::Null,
    };
    Json::object([
        ("enabled", Json::Bool(true)),
        ("entries", Json::Number(store.len() as f64)),
        ("last_seq", Json::Number(store.last_seq() as f64)),
        (
            "recovery",
            Json::object([
                (
                    "snapshot_records",
                    Json::Number(recovery.snapshot_records as f64),
                ),
                ("snapshot_defect", opt_str(&recovery.snapshot_defect)),
                ("wal_segments", Json::Number(recovery.wal_segments as f64)),
                (
                    "wal_records_replayed",
                    Json::Number(recovery.wal_records_replayed as f64),
                ),
                ("repairs", Json::Number(recovery.repairs as f64)),
                ("torn_tail", opt_str(&recovery.torn_tail)),
                (
                    "replay_micros",
                    Json::Number(recovery.replay.as_micros().min(u128::from(u64::MAX)) as f64),
                ),
            ]),
        ),
    ])
}

/// `GET /healthz` — readiness detail: cached crosswalks, uptime, and the
/// build this binary came from (`GEOALIGN_GIT_HASH` is stamped at build
/// time when available; "unknown" otherwise).
fn get_healthz(state: &AppState) -> Response {
    let build = Json::object([
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        (
            "git_hash",
            Json::from(option_env!("GEOALIGN_GIT_HASH").unwrap_or("unknown")),
        ),
    ]);
    Response::json(
        Json::object([
            ("status", Json::from("ok")),
            (
                "store_entries",
                Json::Number(state.cache.stats().entries as f64),
            ),
            (
                "uptime_seconds",
                Json::Number(state.uptime().as_secs() as f64),
            ),
            ("durability", durability_json(state)),
            ("build", build),
        ])
        .to_string()
        .into_bytes(),
    )
}

/// Whether the request asked for Prometheus text exposition — via
/// `?format=prometheus` or an `Accept: text/plain` header.
fn wants_prometheus(req: &Request) -> bool {
    if req.query.split('&').any(|kv| kv == "format=prometheus") {
        return true;
    }
    req.header("accept")
        .is_some_and(|accept| accept.contains("text/plain"))
}

/// `GET /metrics` — counters, cache stats, per-phase latency histograms.
/// JSON by default (the shape pre-registry clients rely on), Prometheus
/// text exposition when asked (see [`wants_prometheus`]).
fn get_metrics(state: &AppState, req: &Request) -> Response {
    let stats = state.cache.stats();
    if wants_prometheus(req) {
        // Cache stats live as plain atomics on the store, so mirror them
        // into a scratch registry for this scrape. The serve registry is
        // scraped first, then the scratch, then the process-global
        // registry with the core/partition library metrics.
        let scratch = Registry::new();
        scratch
            .counter(
                "geoalign_serve_cache_hits_total",
                "Prepared-crosswalk cache hits",
            )
            .add(stats.hits);
        scratch
            .counter(
                "geoalign_serve_cache_misses_total",
                "Prepared-crosswalk cache misses",
            )
            .add(stats.misses);
        scratch
            .counter(
                "geoalign_serve_cache_evictions_total",
                "Prepared-crosswalk cache evictions",
            )
            .add(stats.evictions);
        scratch
            .gauge(
                "geoalign_serve_cache_entries",
                "Prepared crosswalks currently cached",
            )
            .set(stats.entries as i64);
        let text = expo::prometheus_text([state.metrics.registry(), &scratch, Registry::global()]);
        return Response::text(PROMETHEUS_CONTENT_TYPE, text.into_bytes());
    }
    let cache = Json::object([
        ("hits", Json::Number(stats.hits as f64)),
        ("misses", Json::Number(stats.misses as f64)),
        ("evictions", Json::Number(stats.evictions as f64)),
        ("entries", Json::Number(stats.entries as f64)),
        ("hit_rate", Json::Number(stats.hit_rate())),
    ]);
    let mut doc = match state.metrics.to_json() {
        Json::Object(pairs) => pairs,
        _ => unreachable!("Metrics::to_json returns an object"),
    };
    doc.push(("cache".to_owned(), cache));
    Response::json(Json::Object(doc).to_string().into_bytes())
}

/// One `k=v` query parameter parsed as an integer, clamped to a range.
fn query_u64(req: &Request, key: &str, default: u64, min: u64, max: u64) -> u64 {
    req.query
        .split('&')
        .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default)
        .clamp(min, max)
}

/// `GET /debug/profile?seconds=N[&hz=M]` — runs the sampling profiler
/// for the window and answers collapsed stacks as `text/plain`
/// (`flamegraph.pl` input). Blocks the handling worker for the window by
/// design; the window is capped at 30 s. Sampling statistics ride in
/// `X-Profile-*` headers so the body stays pure collapsed stacks.
fn get_debug_profile(req: &Request) -> Response {
    let seconds = query_u64(req, "seconds", 2, 1, 30);
    let hz = query_u64(req, "hz", 997, 1, 5_000);
    let profiler = geoalign_obs::Profiler::start(hz);
    std::thread::sleep(std::time::Duration::from_secs(seconds));
    let report = profiler.stop();
    let mut resp = Response::text(
        "text/plain; charset=utf-8",
        report.collapsed_text().into_bytes(),
    );
    resp.set_header("X-Profile-Sweeps", report.sweeps.to_string());
    resp.set_header("X-Profile-Stack-Samples", report.stack_samples.to_string());
    resp.set_header("X-Profile-Idle-Samples", report.idle_samples.to_string());
    resp.set_header(
        "X-Profile-Sampler-Busy-Micros",
        report.sampler_busy.as_micros().to_string(),
    );
    resp
}

/// `GET /debug/spans` — drains the process-global trace ring and answers
/// the recent span records as a JSON array (oldest first).
fn get_debug_spans() -> Response {
    let records: Vec<Json> = geoalign_obs::trace::drain_recent()
        .iter()
        .map(span_record_json)
        .collect();
    Response::json(
        Json::object([
            ("count", Json::Number(records.len() as f64)),
            ("spans", Json::Array(records)),
        ])
        .to_string()
        .into_bytes(),
    )
}

/// `GET /debug/slow` — the slowest requests retained so far, slowest
/// first, each with its full span records (ids and parents intact, so a
/// client can rebuild the tree).
fn get_debug_slow(state: &AppState) -> Response {
    let entries: Vec<Json> = state
        .slow_requests()
        .iter()
        .map(|e| {
            Json::object([
                ("trace_id", Json::from(e.trace_id.as_str())),
                ("method", Json::from(e.method.as_str())),
                ("path", Json::from(e.path.as_str())),
                ("status", Json::Number(f64::from(e.status))),
                ("duration_micros", Json::Number(e.duration_micros as f64)),
                (
                    "spans",
                    Json::Array(e.spans.iter().map(span_record_json).collect()),
                ),
            ])
        })
        .collect();
    Response::json(
        Json::object([("slowest", Json::Array(entries))])
            .to_string()
            .into_bytes(),
    )
}

/// `GET /debug/threads` — request-pool occupancy (submitted / started /
/// completed, queue depth, jobs in flight) plus the process thread
/// budget.
fn get_debug_threads(state: &AppState) -> Response {
    let pool = match state.pool_stats() {
        Some(s) => Json::object([
            ("submitted", Json::Number(s.submitted as f64)),
            ("started", Json::Number(s.started as f64)),
            ("completed", Json::Number(s.completed as f64)),
            ("queue_depth", Json::Number(s.queue_depth as f64)),
            ("active", Json::Number(s.active as f64)),
        ]),
        // Routing without a bound server (unit tests, embedders).
        None => Json::Null,
    };
    Response::json(
        Json::object([
            ("pool", pool),
            (
                "exec_threads",
                Json::Number(geoalign_exec::global_threads() as f64),
            ),
            (
                "hardware_threads",
                Json::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
            ),
        ])
        .to_string()
        .into_bytes(),
    )
}

/// One span record as JSON for the debug endpoints: identity, tree
/// links, timing.
fn span_record_json(s: &geoalign_obs::SpanRecord) -> Json {
    Json::object([
        ("id", Json::Number(s.id as f64)),
        (
            "parent",
            s.parent.map_or(Json::Null, |p| Json::Number(p as f64)),
        ),
        (
            "trace_id",
            s.trace_id.as_deref().map_or(Json::Null, Json::from),
        ),
        ("name", Json::from(s.name)),
        ("thread", Json::from(&*s.thread)),
        (
            "start_unix_micros",
            Json::Number(s.start_unix_micros as f64),
        ),
        ("duration_micros", Json::Number(s.duration_micros as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            query: String::new(),
            version: "HTTP/1.1".to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn body_json(resp: &Response) -> Json {
        json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    fn state_with_world() -> std::sync::Arc<AppState> {
        let state = AppState::new(8);
        let r = route(
            &state,
            &request(
                "POST",
                "/systems",
                r#"{"name":"zip","units":["z1","z2","z3"]}"#,
            ),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let r = route(
            &state,
            &request("POST", "/systems", r#"{"name":"county","units":["A","B"]}"#),
        );
        assert_eq!(r.status, 200);
        let r = route(
            &state,
            &request(
                "POST",
                "/references",
                r#"{"source":"zip","target":"county","name":"population",
                   "entries":[["z1","A",100],["z2","A",60],["z2","B",40],["z3","B",80]]}"#,
            ),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        state
    }

    #[test]
    fn health_and_unknown_routes() {
        let state = AppState::new(4);
        let r = route(&state, &request("GET", "/healthz", ""));
        assert_eq!(r.status, 200);
        assert_eq!(body_json(&r).get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(route(&state, &request("GET", "/nope", "")).status, 404);
        assert_eq!(
            route(&state, &request("DELETE", "/healthz", "")).status,
            405
        );
    }

    #[test]
    fn crosswalk_end_to_end() {
        let state = state_with_world();
        let body = r#"{"source":"zip","target":"county",
            "attributes":[{"name":"steam","values":[10,20,30]}]}"#;
        let r = route(&state, &request("POST", "/crosswalk", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let doc = body_json(&r);
        assert_eq!(doc.get("cache_hit"), Some(&Json::Bool(false)));
        let col = &doc.get("columns").unwrap().as_array().unwrap()[0];
        let values = col.get("values").unwrap().as_array().unwrap();
        // z1 wholly in A, z2 splits 60/40, z3 wholly in B: A=22, B=38.
        assert!((values[0].as_f64().unwrap() - 22.0).abs() < 1e-9);
        assert!((values[1].as_f64().unwrap() - 38.0).abs() < 1e-9);
        // Second request hits the cache.
        let r = route(&state, &request("POST", "/crosswalk", body));
        assert_eq!(body_json(&r).get("cache_hit"), Some(&Json::Bool(true)));
    }

    #[test]
    fn crosswalk_validates_input() {
        let state = state_with_world();
        // Wrong value count.
        let r = route(
            &state,
            &request(
                "POST",
                "/crosswalk",
                r#"{"source":"zip","target":"county","attributes":[{"name":"x","values":[1]}]}"#,
            ),
        );
        assert_eq!(r.status, 400);
        // Unregistered pair.
        let r = route(
            &state,
            &request(
                "POST",
                "/crosswalk",
                r#"{"source":"county","target":"zip","attributes":[{"name":"x","values":[1,2]}]}"#,
            ),
        );
        assert_eq!(r.status, 404);
        // Malformed JSON.
        let r = route(&state, &request("POST", "/crosswalk", "{nope"));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn deep_json_bodies_are_rejected_and_counted() {
        let state = AppState::new(4);
        let hostile = "[".repeat(100_000);
        let r = route(&state, &request("POST", "/systems", &hostile));
        assert_eq!(r.status, 400);
        assert!(
            String::from_utf8_lossy(&r.body).contains("depth limit"),
            "{:?}",
            String::from_utf8_lossy(&r.body)
        );
        assert_eq!(state.metrics.depth_limit_rejections.get(), 1);
        // An ordinary syntax error does not bump the depth counter.
        let r = route(&state, &request("POST", "/systems", "{nope"));
        assert_eq!(r.status, 400);
        assert_eq!(state.metrics.depth_limit_rejections.get(), 1);
    }

    #[test]
    fn references_validate_units() {
        let state = state_with_world();
        let r = route(
            &state,
            &request(
                "POST",
                "/references",
                r#"{"source":"zip","target":"county","name":"bad",
                   "entries":[["z9","A",1]]}"#,
            ),
        );
        assert_eq!(r.status, 400);
        assert!(String::from_utf8_lossy(&r.body).contains("z9"));
    }

    #[test]
    fn healthz_reports_readiness_detail() {
        let state = state_with_world();
        let body = r#"{"source":"zip","target":"county",
            "attributes":[{"name":"steam","values":[10,20,30]}]}"#;
        route(&state, &request("POST", "/crosswalk", body));
        let r = route(&state, &request("GET", "/healthz", ""));
        assert_eq!(r.status, 200);
        let doc = body_json(&r);
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("store_entries").unwrap().as_f64(), Some(1.0));
        assert!(doc.get("uptime_seconds").unwrap().as_f64().unwrap() >= 0.0);
        let build = doc.get("build").unwrap();
        assert_eq!(
            build.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(build.get("git_hash").unwrap().as_str().is_some());
    }

    #[test]
    fn metrics_content_negotiation() {
        let state = state_with_world();
        let body = r#"{"source":"zip","target":"county",
            "attributes":[{"name":"steam","values":[10,20,30]}]}"#;
        route(&state, &request("POST", "/crosswalk", body));

        // ?format=prometheus switches to text exposition.
        let mut prom_req = request("GET", "/metrics", "");
        prom_req.query = "format=prometheus".to_owned();
        let r = route(&state, &prom_req);
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "text/plain; version=0.0.4");
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("# TYPE geoalign_serve_requests_total counter"));
        assert!(
            text.contains("geoalign_serve_weight_learning_latency_micros_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("geoalign_serve_weight_learning_latency_micros_count 1"));
        assert!(text.contains("geoalign_serve_cache_misses_total 1"));
        assert!(text.contains("geoalign_serve_cache_entries 1"));
        // Library metrics from the process-global registry ride along.
        assert!(text.contains("geoalign_core_solver_iterations"), "{text}");

        // Accept: text/plain also selects Prometheus.
        let mut accept_req = request("GET", "/metrics", "");
        accept_req
            .headers
            .push(("accept".to_owned(), "text/plain".to_owned()));
        let r = route(&state, &accept_req);
        assert_eq!(r.content_type, "text/plain; version=0.0.4");

        // The default stays JSON, same shape as ever.
        let r = route(&state, &request("GET", "/metrics", ""));
        assert_eq!(r.content_type, "application/json");
        assert!(body_json(&r).get("request_latency").is_some());
    }

    #[test]
    fn checkpoint_without_data_dir_is_409() {
        let state = AppState::new(4);
        let r = route(&state, &request("POST", "/checkpoint", ""));
        assert_eq!(r.status, 409);
        assert!(String::from_utf8_lossy(&r.body).contains("--data-dir"));
        // And /healthz says durability is off.
        let health = body_json(&route(&state, &request("GET", "/healthz", "")));
        let durability = health.get("durability").unwrap();
        assert_eq!(durability.get("enabled"), Some(&Json::Bool(false)));
    }

    #[test]
    fn checkpoint_and_healthz_report_durable_detail() {
        let dir = std::env::temp_dir().join(format!("geoalign-router-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let state = AppState::open_durable(&dir, 8).unwrap();
            let r = route(
                &state,
                &request("POST", "/systems", r#"{"name":"zip","units":["z1","z2"]}"#),
            );
            assert_eq!(r.status, 200);
            let r = route(
                &state,
                &request("POST", "/systems", r#"{"name":"county","units":["A","B"]}"#),
            );
            assert_eq!(r.status, 200);
            let r = route(
                &state,
                &request(
                    "POST",
                    "/references",
                    r#"{"source":"zip","target":"county","name":"pop",
                       "entries":[["z1","A",10],["z1","B",30],["z2","B",5]]}"#,
                ),
            );
            assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
            let r = route(&state, &request("POST", "/checkpoint", ""));
            assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
            let doc = body_json(&r);
            assert_eq!(doc.get("records").unwrap().as_f64(), Some(3.0));
            assert!(doc.get("snapshot_bytes").unwrap().as_f64().unwrap() > 0.0);
        }
        // Reopen: the registrations came back through the snapshot, and
        // /healthz carries the recovery detail.
        let state = AppState::open_durable(&dir, 8).unwrap();
        let health = body_json(&route(&state, &request("GET", "/healthz", "")));
        let durability = health.get("durability").unwrap();
        assert_eq!(durability.get("enabled"), Some(&Json::Bool(true)));
        assert_eq!(durability.get("entries").unwrap().as_f64(), Some(3.0));
        let recovery = durability.get("recovery").unwrap();
        assert_eq!(
            recovery.get("snapshot_records").unwrap().as_f64(),
            Some(3.0)
        );
        assert_eq!(recovery.get("repairs").unwrap().as_f64(), Some(0.0));
        assert_eq!(recovery.get("torn_tail"), Some(&Json::Null));
        let body = r#"{"source":"zip","target":"county",
            "attributes":[{"name":"x","values":[4,6]}]}"#;
        let r = route(&state, &request("POST", "/crosswalk", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_reference_posts_persist_in_registration_order() {
        // Regression: the ref/<nnnnnnnn> index must be assigned while the
        // pipeline write lock is held, so racing POSTs persist in the
        // same order they registered and warm-start replay reproduces the
        // cold pipeline's reference sequence exactly.
        let dir =
            std::env::temp_dir().join(format!("geoalign-router-reforder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold_order: Vec<String> = {
            let state = AppState::open_durable(&dir, 8).unwrap();
            let r = route(
                &state,
                &request("POST", "/systems", r#"{"name":"zip","units":["z1","z2"]}"#),
            );
            assert_eq!(r.status, 200);
            let r = route(
                &state,
                &request("POST", "/systems", r#"{"name":"county","units":["A","B"]}"#),
            );
            assert_eq!(r.status, 200);
            std::thread::scope(|s| {
                for t in 0..4 {
                    let state = &state;
                    s.spawn(move || {
                        for i in 0..5 {
                            let body = format!(
                                r#"{{"source":"zip","target":"county","name":"r{t}-{i}",
                                   "entries":[["z1","A",10],["z1","B",30],["z2","B",5]]}}"#
                            );
                            let r = route(state, &request("POST", "/references", &body));
                            assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
                        }
                    });
                }
            });
            let order: Vec<String> = state
                .pipeline()
                .references("zip", "county")
                .iter()
                .map(|r| r.name().to_owned())
                .collect();
            order
        };
        assert_eq!(cold_order.len(), 20);

        let state = AppState::open_durable(&dir, 8).unwrap();
        let warm_order: Vec<String> = state
            .pipeline()
            .references("zip", "county")
            .iter()
            .map(|r| r.name().to_owned())
            .collect();
        assert_eq!(
            warm_order, cold_order,
            "warm-start replay must preserve registration order"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_include_cache_stats() {
        let state = state_with_world();
        let body = r#"{"source":"zip","target":"county",
            "attributes":[{"name":"steam","values":[10,20,30]}]}"#;
        route(&state, &request("POST", "/crosswalk", body));
        route(&state, &request("POST", "/crosswalk", body));
        let r = route(&state, &request("GET", "/metrics", ""));
        let doc = body_json(&r);
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache.get("entries").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("attributes_applied").unwrap().as_f64(), Some(2.0));
        assert!(doc
            .get("weight_learning_latency")
            .unwrap()
            .get("count")
            .is_some());
    }
}
