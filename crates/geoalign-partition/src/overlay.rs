//! Spatial overlay: computing the intersection unit system `U^st`
//! (paper §3.1, Eq. 4) between a source and a target unit system.
//!
//! Every piece of the overlay records which source and target unit it came
//! from and its measure (area / length / volume); the measure matrix is the
//! disaggregation matrix of the *measure attribute* — exactly the ancillary
//! data the areal weighting method consumes (paper §3.3).

use crate::disagg::DisaggregationMatrix;
use crate::error::PartitionError;
use crate::unit_system::{BoxUnitSystem, IntervalUnitSystem, PolygonUnitSystem};
use geoalign_exec::Executor;
use geoalign_geom::clip::clip_convex;
use geoalign_geom::Polygon;
use geoalign_obs::span;

/// One intersection unit: a piece of some source unit inside some target
/// unit.
#[derive(Debug, Clone)]
pub struct OverlayPiece {
    /// Index of the source unit the piece belongs to.
    pub source: usize,
    /// Index of the target unit the piece belongs to.
    pub target: usize,
    /// Lebesgue measure of the piece (area in 2-D, length in 1-D, ...).
    pub measure: f64,
    /// The piece's polygon (2-D overlays only; `None` for 1-D / n-D).
    pub polygon: Option<Polygon>,
}

/// The intersection unit system between a source and a target system.
#[derive(Debug, Clone)]
pub struct Overlay {
    n_source: usize,
    n_target: usize,
    pieces: Vec<OverlayPiece>,
}

impl Overlay {
    /// Overlays two 2-D polygon unit systems. Pieces are computed with
    /// convex clipping accelerated by the target system's R-tree; target
    /// units must be convex (Voronoi-derived systems are).
    pub fn polygons(
        source: &PolygonUnitSystem,
        target: &PolygonUnitSystem,
    ) -> Result<Self, PartitionError> {
        Self::polygons_with(source, target, Executor::global())
    }

    /// [`Overlay::polygons`] on an explicit executor. Source units fan out
    /// in chunks; per-chunk piece lists are concatenated in chunk order,
    /// so the pieces come out in source-unit order (and within a source
    /// unit in sorted target order) at every thread count.
    pub fn polygons_with(
        source: &PolygonUnitSystem,
        target: &PolygonUnitSystem,
        exec: Executor,
    ) -> Result<Self, PartitionError> {
        let mut span = span!(
            "overlay_polygons",
            n_source = source.len(),
            n_target = target.len()
        );
        let probe_hist = crate::obs::rtree_candidates();
        let per_chunk = exec.par_chunks(source.units(), |offset, chunk| {
            let mut pieces = Vec::new();
            let mut candidates: Vec<usize> = Vec::new();
            for (k, su) in chunk.iter().enumerate() {
                let si = offset + k;
                candidates.clear();
                target.rtree().query(su.bbox(), |ti| candidates.push(ti));
                probe_hist.record_value(candidates.len() as u64);
                // Deterministic order regardless of tree layout.
                candidates.sort_unstable();
                for &ti in &candidates {
                    if let Some(piece) = clip_convex(su, &target.units()[ti]) {
                        pieces.push(OverlayPiece {
                            source: si,
                            target: ti,
                            measure: piece.area(),
                            polygon: Some(piece),
                        });
                    }
                }
            }
            pieces
        })?;
        let mut pieces = Vec::with_capacity(per_chunk.iter().map(Vec::len).sum());
        for chunk in per_chunk {
            pieces.extend(chunk);
        }
        crate::obs::overlay_total().inc();
        crate::obs::overlay_pieces_total().add(pieces.len() as u64);
        span.record("pieces", pieces.len());
        Ok(Self {
            n_source: source.len(),
            n_target: target.len(),
            pieces,
        })
    }

    /// Overlays two 1-D interval unit systems (the histogram realignment of
    /// paper Figure 3). Linear merge over the sorted bins.
    pub fn intervals(
        source: &IntervalUnitSystem,
        target: &IntervalUnitSystem,
    ) -> Result<Self, PartitionError> {
        let mut span = span!(
            "overlay_intervals",
            n_source = source.len(),
            n_target = target.len()
        );
        let mut pieces = Vec::new();
        let mut ti = 0usize;
        for (si, su) in source.units().iter().enumerate() {
            // Rewind target cursor to the first bin that can intersect.
            while ti > 0 && target.units()[ti].lo() > su.lo() {
                ti -= 1;
            }
            let mut tj = ti;
            while tj < target.len() {
                let tu = &target.units()[tj];
                if tu.lo() >= su.hi() {
                    break;
                }
                if let Some(i) = su.intersection(tu) {
                    pieces.push(OverlayPiece {
                        source: si,
                        target: tj,
                        measure: i.length(),
                        polygon: None,
                    });
                }
                tj += 1;
            }
        }
        crate::obs::overlay_total().inc();
        crate::obs::overlay_pieces_total().add(pieces.len() as u64);
        span.record("pieces", pieces.len());
        Ok(Self {
            n_source: source.len(),
            n_target: target.len(),
            pieces,
        })
    }

    /// Overlays two n-dimensional box unit systems (O(|S|·|T|); box systems
    /// in this library are modest in size).
    pub fn boxes(source: &BoxUnitSystem, target: &BoxUnitSystem) -> Result<Self, PartitionError> {
        Self::boxes_with(source, target, Executor::global())
    }

    /// [`Overlay::boxes`] on an explicit executor. Chunks of source units
    /// each scan all targets; chunk results merge in chunk order, so both
    /// the piece order and the first error (chunks are ascending source
    /// ranges) match the sequential scan exactly.
    pub fn boxes_with(
        source: &BoxUnitSystem,
        target: &BoxUnitSystem,
        exec: Executor,
    ) -> Result<Self, PartitionError> {
        if source.dim() != target.dim() {
            return Err(PartitionError::SystemMismatch {
                what: "box overlay dimension",
                left: source.dim(),
                right: target.dim(),
            });
        }
        let mut span = span!(
            "overlay_boxes",
            n_source = source.len(),
            n_target = target.len()
        );
        let per_chunk = exec.par_chunks(source.units(), |offset, chunk| {
            let mut pieces = Vec::new();
            for (k, su) in chunk.iter().enumerate() {
                let si = offset + k;
                for (ti, tu) in target.units().iter().enumerate() {
                    if let Some(i) = su.intersection(tu)? {
                        pieces.push(OverlayPiece {
                            source: si,
                            target: ti,
                            measure: i.volume(),
                            polygon: None,
                        });
                    }
                }
            }
            Ok::<_, PartitionError>(pieces)
        })?;
        let mut pieces = Vec::new();
        for chunk in per_chunk {
            pieces.extend(chunk?);
        }
        crate::obs::overlay_total().inc();
        crate::obs::overlay_pieces_total().add(pieces.len() as u64);
        span.record("pieces", pieces.len());
        Ok(Self {
            n_source: source.len(),
            n_target: target.len(),
            pieces,
        })
    }

    /// Number of source units.
    pub fn n_source(&self) -> usize {
        self.n_source
    }

    /// Number of target units.
    pub fn n_target(&self) -> usize {
        self.n_target
    }

    /// The intersection pieces.
    pub fn pieces(&self) -> &[OverlayPiece] {
        &self.pieces
    }

    /// Number of intersection units (`|U^st| >= max(|U^s|, |U^t|)` for
    /// covering systems, per §3.1).
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// Returns `true` when the systems do not intersect at all.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Total measure of all pieces.
    pub fn total_measure(&self) -> f64 {
        self.pieces.iter().map(|p| p.measure).sum()
    }

    /// The disaggregation matrix of the measure attribute ("Area (Sq.
    /// Miles)" in the paper's US catalog) — the ancillary input of the
    /// areal weighting method.
    pub fn measure_dm(
        &self,
        attribute: impl Into<String>,
    ) -> Result<DisaggregationMatrix, PartitionError> {
        DisaggregationMatrix::from_triples(
            attribute,
            self.n_source,
            self.n_target,
            self.pieces.iter().map(|p| (p.source, p.target, p.measure)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_geom::interval::equal_bins;
    use geoalign_geom::ndbox::grid_partition;
    use geoalign_geom::{Aabb, Point2, VoronoiDiagram};

    fn strips(name: &str, n: usize) -> PolygonUnitSystem {
        // n vertical strips of [0,1]².
        let w = 1.0 / n as f64;
        let units = (0..n)
            .map(|i| {
                Polygon::rect(
                    Point2::new(i as f64 * w, 0.0),
                    Point2::new((i + 1) as f64 * w, 1.0),
                )
                .unwrap()
            })
            .collect();
        PolygonUnitSystem::new(name, units).unwrap()
    }

    fn bands(name: &str, n: usize) -> PolygonUnitSystem {
        // n horizontal bands of [0,1]².
        let h = 1.0 / n as f64;
        let units = (0..n)
            .map(|i| {
                Polygon::rect(
                    Point2::new(0.0, i as f64 * h),
                    Point2::new(1.0, (i + 1) as f64 * h),
                )
                .unwrap()
            })
            .collect();
        PolygonUnitSystem::new(name, units).unwrap()
    }

    #[test]
    fn strips_times_bands_is_a_grid() {
        let s = strips("s", 4);
        let t = bands("t", 3);
        let ov = Overlay::polygons(&s, &t).unwrap();
        assert_eq!(ov.len(), 12);
        assert_eq!(ov.n_source(), 4);
        assert_eq!(ov.n_target(), 3);
        assert!((ov.total_measure() - 1.0).abs() < 1e-12);
        for p in ov.pieces() {
            assert!((p.measure - 1.0 / 12.0).abs() < 1e-12);
            assert!(p.polygon.is_some());
        }
    }

    #[test]
    fn measure_dm_row_sums_are_source_areas() {
        let s = strips("s", 5);
        let t = bands("t", 2);
        let ov = Overlay::polygons(&s, &t).unwrap();
        let dm = ov.measure_dm("area").unwrap();
        let rows = dm.matrix().row_sums();
        for (&r, &a) in rows.iter().zip(&s.measures()) {
            assert!((r - a).abs() < 1e-12);
        }
        let cols = dm.matrix().col_sums();
        for (&c, &a) in cols.iter().zip(&t.measures()) {
            assert!((c - a).abs() < 1e-12);
        }
    }

    #[test]
    fn voronoi_overlay_preserves_total_area() {
        let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let mut rng_state: u64 = 31;
        let mut r = move |_| {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        let fine = VoronoiDiagram::jittered_grid(bounds, 9, 9, 0.45, &mut r).unwrap();
        let coarse = VoronoiDiagram::jittered_grid(bounds, 3, 3, 0.45, &mut r).unwrap();
        let s = PolygonUnitSystem::from_voronoi("zip", fine).unwrap();
        let t = PolygonUnitSystem::from_voronoi("county", coarse).unwrap();
        let ov = Overlay::polygons(&s, &t).unwrap();
        assert!((ov.total_measure() - 1.0).abs() < 1e-9);
        assert!(ov.len() >= s.len().max(t.len()));
        // Per-source-unit conservation.
        let mut per_source = vec![0.0; s.len()];
        for p in ov.pieces() {
            per_source[p.source] += p.measure;
        }
        for (ps, a) in per_source.iter().zip(s.measures()) {
            assert!((ps - a).abs() < 1e-9);
        }
    }

    #[test]
    fn interval_overlay_matches_figure3_shape() {
        // Narrow source bins realigned to wide target bins.
        let s = IntervalUnitSystem::new("narrow", equal_bins(0.0, 90.0, 9).unwrap()).unwrap();
        let t = IntervalUnitSystem::new("wide", equal_bins(0.0, 90.0, 3).unwrap()).unwrap();
        let ov = Overlay::intervals(&s, &t).unwrap();
        // Each narrow bin falls in exactly one wide bin here.
        assert_eq!(ov.len(), 9);
        assert!((ov.total_measure() - 90.0).abs() < 1e-12);
        // Misaligned bins split.
        let t2 = IntervalUnitSystem::new("w2", equal_bins(5.0, 85.0, 2).unwrap()).unwrap();
        let ov2 = Overlay::intervals(&s, &t2).unwrap();
        assert!(ov2.len() > 8);
        assert!((ov2.total_measure() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn box_overlay_3d() {
        let s = BoxUnitSystem::new(
            "fine",
            grid_partition(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &[4, 4, 4]).unwrap(),
        )
        .unwrap();
        let t = BoxUnitSystem::new(
            "coarse",
            grid_partition(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &[2, 2, 2]).unwrap(),
        )
        .unwrap();
        let ov = Overlay::boxes(&s, &t).unwrap();
        // Aligned grids: each fine cell in exactly one coarse cell.
        assert_eq!(ov.len(), 64);
        assert!((ov.total_measure() - 1.0).abs() < 1e-12);
        // Dimension mismatch errors.
        let flat =
            BoxUnitSystem::new("flat", grid_partition(&[(0.0, 1.0)], &[2]).unwrap()).unwrap();
        assert!(Overlay::boxes(&s, &flat).is_err());
    }

    #[test]
    fn disjoint_systems_overlay_empty() {
        let a = PolygonUnitSystem::new(
            "a",
            vec![Polygon::rect(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)).unwrap()],
        )
        .unwrap();
        let b = PolygonUnitSystem::new(
            "b",
            vec![Polygon::rect(Point2::new(5.0, 5.0), Point2::new(6.0, 6.0)).unwrap()],
        )
        .unwrap();
        let ov = Overlay::polygons(&a, &b).unwrap();
        assert!(ov.is_empty());
        assert_eq!(ov.total_measure(), 0.0);
    }
}
