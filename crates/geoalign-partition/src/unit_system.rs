//! Unit systems: partitions of a universe into disjoint units
//! (paper §2.1).
//!
//! Three concrete realizations cover the paper's settings:
//!
//! * [`PolygonUnitSystem`] — 2-D feature layers (zip codes, counties);
//! * [`IntervalUnitSystem`] — 1-D bins (age histograms, Figure 3);
//! * [`BoxUnitSystem`] — axis-aligned cells in arbitrary dimension
//!   (3-D disease grids, 4-D space–time cells; §2.2).

use crate::error::PartitionError;
use geoalign_geom::{Aabb, Interval, NdBox, Point2, Polygon, RTree, VoronoiDiagram};

/// A 2-D unit system: a set of disjoint polygons covering (part of) the
/// plane, indexed by an R-tree for point location and overlay queries.
#[derive(Debug, Clone)]
pub struct PolygonUnitSystem {
    name: String,
    units: Vec<Polygon>,
    rtree: RTree,
}

impl PolygonUnitSystem {
    /// Builds a system from named polygons. Disjointness is the caller's
    /// contract (systems produced by [`PolygonUnitSystem::from_voronoi`] or
    /// by subsetting satisfy it by construction); [`Self::overlap_area`]
    /// offers an explicit audit.
    pub fn new(name: impl Into<String>, units: Vec<Polygon>) -> Result<Self, PartitionError> {
        if units.is_empty() {
            return Err(PartitionError::EmptySystem);
        }
        let boxes: Vec<Aabb> = units.iter().map(|u| *u.bbox()).collect();
        let rtree = RTree::build(&boxes);
        Ok(Self {
            name: name.into(),
            units,
            rtree,
        })
    }

    /// Builds a system from a Voronoi tessellation (cells are disjoint and
    /// cover the diagram bounds by construction).
    pub fn from_voronoi(
        name: impl Into<String>,
        diagram: VoronoiDiagram,
    ) -> Result<Self, PartitionError> {
        Self::new(name, diagram.into_cells())
    }

    /// Human-readable system name (e.g. `"zip"`, `"county"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The units.
    pub fn units(&self) -> &[Polygon] {
        &self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Always `false`: construction rejects empty systems.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The spatial index over unit bounding boxes.
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// Per-unit areas — the measure vector used by areal weighting.
    pub fn measures(&self) -> Vec<f64> {
        self.units.iter().map(Polygon::area).collect()
    }

    /// Total area of the system.
    pub fn total_measure(&self) -> f64 {
        self.units.iter().map(Polygon::area).sum()
    }

    /// Index of a unit containing `p`, or `None`. Boundary points may
    /// belong to several units; the lowest index wins, making assignment
    /// deterministic.
    pub fn locate(&self, p: Point2) -> Option<usize> {
        let mut found: Option<usize> = None;
        self.rtree.query_point(p, |i| {
            if (found.is_none() || i < found.unwrap()) && self.units[i].contains(p) {
                found = Some(i);
            }
        });
        found
    }

    /// Total pairwise overlap area between distinct units — an audit for
    /// the disjointness contract (O(n·k) with k candidates per unit;
    /// intended for tests and validation, not hot paths).
    pub fn overlap_area(&self) -> f64 {
        let mut total = 0.0;
        for (i, u) in self.units.iter().enumerate() {
            let mut cands = Vec::new();
            self.rtree.query(u.bbox(), |j| {
                if j > i {
                    cands.push(j);
                }
            });
            for j in cands {
                if let Some(p) = geoalign_geom::clip::clip_convex(u, &self.units[j]) {
                    total += p.area();
                }
            }
        }
        total
    }
}

/// A 1-D unit system: disjoint intervals (histogram bins).
#[derive(Debug, Clone)]
pub struct IntervalUnitSystem {
    name: String,
    units: Vec<Interval>,
}

impl IntervalUnitSystem {
    /// Builds a system from intervals sorted by lower bound; rejects empty
    /// input and overlapping (positively intersecting) intervals.
    pub fn new(name: impl Into<String>, mut units: Vec<Interval>) -> Result<Self, PartitionError> {
        if units.is_empty() {
            return Err(PartitionError::EmptySystem);
        }
        units.sort_by(|a, b| a.lo().total_cmp(&b.lo()));
        for w in units.windows(2) {
            if w[0].intersection(&w[1]).is_some() {
                return Err(PartitionError::SystemMismatch {
                    what: "interval overlap",
                    left: 0,
                    right: 0,
                });
            }
        }
        Ok(Self {
            name: name.into(),
            units,
        })
    }

    /// Human-readable system name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The intervals, sorted by lower bound.
    pub fn units(&self) -> &[Interval] {
        &self.units
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Always `false`: construction rejects empty systems.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Per-unit lengths.
    pub fn measures(&self) -> Vec<f64> {
        self.units.iter().map(Interval::length).collect()
    }

    /// Index of a unit containing `x` (binary search; lowest index on
    /// shared boundaries).
    pub fn locate(&self, x: f64) -> Option<usize> {
        // Find the last interval with lo <= x, then check containment; a
        // shared boundary point `hi == next.lo` belongs to the earlier bin.
        let mut lo = 0usize;
        let mut hi = self.units.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.units[mid].lo() <= x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // At most two sorted, non-overlapping intervals can contain x (when
        // x sits exactly on a shared boundary); prefer the earlier one so
        // boundary assignment is deterministic.
        let c = lo.saturating_sub(1);
        [c.saturating_sub(1), c, lo]
            .into_iter()
            .find(|&idx| idx < self.units.len() && self.units[idx].contains(x))
    }
}

/// An n-dimensional unit system: disjoint axis-aligned boxes.
#[derive(Debug, Clone)]
pub struct BoxUnitSystem {
    name: String,
    units: Vec<NdBox>,
    dim: usize,
}

impl BoxUnitSystem {
    /// Builds a system from boxes of uniform dimension; rejects empty input
    /// and mixed dimensions. Disjointness is the caller's contract (grid
    /// partitions from [`geoalign_geom::ndbox::grid_partition`] satisfy it).
    pub fn new(name: impl Into<String>, units: Vec<NdBox>) -> Result<Self, PartitionError> {
        let Some(first) = units.first() else {
            return Err(PartitionError::EmptySystem);
        };
        let dim = first.dim();
        if let Some(bad) = units.iter().find(|u| u.dim() != dim) {
            return Err(PartitionError::SystemMismatch {
                what: "box dimension",
                left: dim,
                right: bad.dim(),
            });
        }
        Ok(Self {
            name: name.into(),
            units,
            dim,
        })
    }

    /// Human-readable system name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The boxes.
    pub fn units(&self) -> &[NdBox] {
        &self.units
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Always `false`: construction rejects empty systems.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Dimension shared by all boxes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Per-unit volumes.
    pub fn measures(&self) -> Vec<f64> {
        self.units.iter().map(NdBox::volume).collect()
    }

    /// Index of a unit containing the point (lowest index on shared
    /// boundaries). Linear scan — box systems in this library are small or
    /// used only in batch overlay, which does not locate points.
    pub fn locate(&self, point: &[f64]) -> Result<Option<usize>, PartitionError> {
        for (i, u) in self.units.iter().enumerate() {
            if u.contains(point)? {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_geom::interval::equal_bins;
    use geoalign_geom::ndbox::grid_partition;

    fn two_cell_system() -> PolygonUnitSystem {
        let left = Polygon::rect(Point2::new(0.0, 0.0), Point2::new(1.0, 2.0)).unwrap();
        let right = Polygon::rect(Point2::new(1.0, 0.0), Point2::new(2.0, 2.0)).unwrap();
        PolygonUnitSystem::new("halves", vec![left, right]).unwrap()
    }

    #[test]
    fn polygon_system_basics() {
        let sys = two_cell_system();
        assert_eq!(sys.name(), "halves");
        assert_eq!(sys.len(), 2);
        assert_eq!(sys.measures(), vec![2.0, 2.0]);
        assert_eq!(sys.total_measure(), 4.0);
        assert!(PolygonUnitSystem::new("empty", vec![]).is_err());
    }

    #[test]
    fn polygon_locate() {
        let sys = two_cell_system();
        assert_eq!(sys.locate(Point2::new(0.5, 1.0)), Some(0));
        assert_eq!(sys.locate(Point2::new(1.5, 1.0)), Some(1));
        // Shared boundary: deterministic lowest index.
        assert_eq!(sys.locate(Point2::new(1.0, 1.0)), Some(0));
        assert_eq!(sys.locate(Point2::new(5.0, 5.0)), None);
    }

    #[test]
    fn polygon_overlap_audit() {
        let sys = two_cell_system();
        assert!(sys.overlap_area() < 1e-12);
        // Deliberately overlapping system is detected.
        let a = Polygon::rect(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0)).unwrap();
        let b = Polygon::rect(Point2::new(1.0, 0.0), Point2::new(3.0, 2.0)).unwrap();
        let bad = PolygonUnitSystem::new("bad", vec![a, b]).unwrap();
        assert!((bad.overlap_area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn voronoi_system() {
        let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let d = VoronoiDiagram::build(vec![Point2::new(0.25, 0.5), Point2::new(0.75, 0.5)], bounds)
            .unwrap();
        let sys = PolygonUnitSystem::from_voronoi("vor", d).unwrap();
        assert_eq!(sys.len(), 2);
        assert!((sys.total_measure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interval_system_basics_and_locate() {
        let sys = IntervalUnitSystem::new("ages", equal_bins(0.0, 100.0, 5).unwrap()).unwrap();
        assert_eq!(sys.len(), 5);
        assert_eq!(sys.measures(), vec![20.0; 5]);
        assert_eq!(sys.locate(10.0), Some(0));
        assert_eq!(sys.locate(99.9), Some(4));
        assert_eq!(sys.locate(100.0), Some(4));
        // Shared boundary belongs to the earlier bin.
        assert_eq!(sys.locate(20.0), Some(0));
        assert_eq!(sys.locate(-1.0), None);
        assert_eq!(sys.locate(101.0), None);
    }

    #[test]
    fn interval_system_rejects_overlap() {
        let a = Interval::new(0.0, 2.0).unwrap();
        let b = Interval::new(1.0, 3.0).unwrap();
        assert!(IntervalUnitSystem::new("bad", vec![a, b]).is_err());
        assert!(IntervalUnitSystem::new("empty", vec![]).is_err());
        // Touching intervals are fine.
        let c = Interval::new(2.0, 3.0).unwrap();
        assert!(IntervalUnitSystem::new("ok", vec![a, c]).is_ok());
    }

    #[test]
    fn interval_system_sorts_input() {
        let a = Interval::new(5.0, 6.0).unwrap();
        let b = Interval::new(0.0, 1.0).unwrap();
        let sys = IntervalUnitSystem::new("s", vec![a, b]).unwrap();
        assert_eq!(sys.units()[0].lo(), 0.0);
    }

    #[test]
    fn box_system_basics() {
        let cells = grid_partition(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &[2, 2, 2]).unwrap();
        let sys = BoxUnitSystem::new("cubes", cells).unwrap();
        assert_eq!(sys.len(), 8);
        assert_eq!(sys.dim(), 3);
        let total: f64 = sys.measures().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(sys.locate(&[0.1, 0.1, 0.1]).unwrap().is_some());
        assert!(sys.locate(&[2.0, 0.0, 0.0]).unwrap().is_none());
        assert!(sys.locate(&[0.1, 0.1]).is_err());
        assert!(BoxUnitSystem::new("empty", vec![]).is_err());
    }

    #[test]
    fn box_system_rejects_mixed_dims() {
        let a = NdBox::from_bounds(&[(0.0, 1.0)]).unwrap();
        let b = NdBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]).unwrap();
        assert!(BoxUnitSystem::new("bad", vec![a, b]).is_err());
    }
}
