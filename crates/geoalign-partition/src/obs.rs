//! Library-level metric handles for the partition layer, registered once
//! in the process-global [`Registry`](geoalign_obs::Registry).
//!
//! Names follow `geoalign_<crate>_<name>_<unit>` (DESIGN.md §8). Handles
//! are cached in `OnceLock` statics so overlay loops pay only the atomic
//! increments.

use geoalign_obs::{Counter, Histogram, Registry};
use std::sync::{Arc, OnceLock};

/// Overlays computed (any kind: polygon, interval, box).
pub(crate) fn overlay_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        Registry::global().counter(
            "geoalign_partition_overlay_total",
            "Overlay computations (intersection unit systems built)",
        )
    })
}

/// Intersection pieces produced across all overlays.
pub(crate) fn overlay_pieces_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        Registry::global().counter(
            "geoalign_partition_overlay_pieces_total",
            "Intersection pieces produced across all overlays",
        )
    })
}

/// R-tree candidate count per source-unit probe in polygon overlays.
pub(crate) fn rtree_candidates() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        Registry::global().histogram(
            "geoalign_partition_rtree_candidates",
            "Candidate target units returned per R-tree bbox probe",
        )
    })
}
