//! Universe subsetting — the paper's factor-control protocol (§4.3):
//! "instead of collecting more datasets for new universes, for each
//! universe, we subset the ten datasets covering the United States,
//! keeping the entries collected from units within the universe".
//!
//! A [`UniverseSubset`] selects the units of a source and a target system
//! that fall inside a region (by centroid membership, the standard GIS
//! convention for assigning units to regions) and restricts aggregate
//! vectors and disaggregation matrices to the selection.

use crate::aggregate::AggregateVector;
use crate::disagg::DisaggregationMatrix;
use crate::error::PartitionError;
use crate::unit_system::PolygonUnitSystem;
use geoalign_geom::Aabb;

/// A consistent selection of source and target units.
#[derive(Debug, Clone)]
pub struct UniverseSubset {
    source_idx: Vec<usize>,
    target_idx: Vec<usize>,
    n_source_full: usize,
    n_target_full: usize,
}

impl UniverseSubset {
    /// Selects the units of both systems whose centroids fall inside
    /// `region`. Errors when either selection is empty.
    pub fn by_region(
        source: &PolygonUnitSystem,
        target: &PolygonUnitSystem,
        region: &Aabb,
    ) -> Result<Self, PartitionError> {
        let source_idx: Vec<usize> = source
            .units()
            .iter()
            .enumerate()
            .filter(|(_, u)| region.contains(u.centroid()))
            .map(|(i, _)| i)
            .collect();
        let target_idx: Vec<usize> = target
            .units()
            .iter()
            .enumerate()
            .filter(|(_, u)| region.contains(u.centroid()))
            .map(|(i, _)| i)
            .collect();
        if source_idx.is_empty() || target_idx.is_empty() {
            return Err(PartitionError::EmptySystem);
        }
        Ok(Self {
            source_idx,
            target_idx,
            n_source_full: source.len(),
            n_target_full: target.len(),
        })
    }

    /// Builds a subset from explicit index lists (deduplicated, sorted).
    pub fn from_indices(
        mut source_idx: Vec<usize>,
        mut target_idx: Vec<usize>,
        n_source_full: usize,
        n_target_full: usize,
    ) -> Result<Self, PartitionError> {
        source_idx.sort_unstable();
        source_idx.dedup();
        target_idx.sort_unstable();
        target_idx.dedup();
        if source_idx.is_empty() || target_idx.is_empty() {
            return Err(PartitionError::EmptySystem);
        }
        if source_idx.last().copied().unwrap_or(0) >= n_source_full
            || target_idx.last().copied().unwrap_or(0) >= n_target_full
        {
            return Err(PartitionError::SystemMismatch {
                what: "subset indices",
                left: n_source_full,
                right: n_target_full,
            });
        }
        Ok(Self {
            source_idx,
            target_idx,
            n_source_full,
            n_target_full,
        })
    }

    /// Selected source unit indices (into the full system).
    pub fn source_indices(&self) -> &[usize] {
        &self.source_idx
    }

    /// Selected target unit indices (into the full system).
    pub fn target_indices(&self) -> &[usize] {
        &self.target_idx
    }

    /// Number of selected source units.
    pub fn n_source(&self) -> usize {
        self.source_idx.len()
    }

    /// Number of selected target units.
    pub fn n_target(&self) -> usize {
        self.target_idx.len()
    }

    /// Restricts a full-universe source aggregate vector to the subset.
    pub fn restrict_source(
        &self,
        vector: &AggregateVector,
    ) -> Result<AggregateVector, PartitionError> {
        if vector.len() != self.n_source_full {
            return Err(PartitionError::LengthMismatch {
                expected: self.n_source_full,
                got: vector.len(),
            });
        }
        let values = self
            .source_idx
            .iter()
            .map(|&i| vector.values()[i])
            .collect();
        AggregateVector::new(vector.attribute().to_owned(), values)
    }

    /// Restricts a full-universe target aggregate vector to the subset.
    pub fn restrict_target(
        &self,
        vector: &AggregateVector,
    ) -> Result<AggregateVector, PartitionError> {
        if vector.len() != self.n_target_full {
            return Err(PartitionError::LengthMismatch {
                expected: self.n_target_full,
                got: vector.len(),
            });
        }
        let values = self
            .target_idx
            .iter()
            .map(|&i| vector.values()[i])
            .collect();
        AggregateVector::new(vector.attribute().to_owned(), values)
    }

    /// Restricts a disaggregation matrix to the subset's source rows and
    /// target columns. Mass flowing to unselected units is dropped — the
    /// same boundary truncation the paper's subsetting performs.
    pub fn restrict_dm(
        &self,
        dm: &DisaggregationMatrix,
    ) -> Result<DisaggregationMatrix, PartitionError> {
        if dm.n_source() != self.n_source_full || dm.n_target() != self.n_target_full {
            return Err(PartitionError::SystemMismatch {
                what: "subset disaggregation matrix",
                left: dm.n_source(),
                right: self.n_source_full,
            });
        }
        let sub = dm.matrix().submatrix(&self.source_idx, &self.target_idx)?;
        DisaggregationMatrix::new(dm.attribute().to_owned(), sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_geom::{Point2, Polygon};

    fn strip_system(name: &str, n: usize) -> PolygonUnitSystem {
        let units = (0..n)
            .map(|i| {
                Polygon::rect(Point2::new(i as f64, 0.0), Point2::new(i as f64 + 1.0, 1.0)).unwrap()
            })
            .collect();
        PolygonUnitSystem::new(name, units).unwrap()
    }

    #[test]
    fn region_selection_by_centroid() {
        let source = strip_system("s", 10);
        let target = strip_system("t", 5);
        // Region covering x in [0, 4): source strips 0..4, target 0..3
        // (target strips are also 1-wide here; centroids at 0.5, 1.5, ...).
        let region = Aabb::new(Point2::new(0.0, 0.0), Point2::new(4.0, 1.0));
        let sub = UniverseSubset::by_region(&source, &target, &region).unwrap();
        assert_eq!(sub.source_indices(), &[0, 1, 2, 3]);
        assert_eq!(sub.target_indices(), &[0, 1, 2, 3]);
        // Empty regions error.
        let off = Aabb::new(Point2::new(50.0, 0.0), Point2::new(51.0, 1.0));
        assert!(UniverseSubset::by_region(&source, &target, &off).is_err());
    }

    #[test]
    fn vector_restriction() {
        let sub = UniverseSubset::from_indices(vec![1, 3], vec![0], 4, 2).unwrap();
        let v = AggregateVector::new("x", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        let r = sub.restrict_source(&v).unwrap();
        assert_eq!(r.values(), &[20.0, 40.0]);
        let t = AggregateVector::new("x", vec![7.0, 8.0]).unwrap();
        assert_eq!(sub.restrict_target(&t).unwrap().values(), &[7.0]);
        // Wrong lengths rejected.
        let short = AggregateVector::new("x", vec![1.0]).unwrap();
        assert!(sub.restrict_source(&short).is_err());
        assert!(sub.restrict_target(&v).is_err());
    }

    #[test]
    fn dm_restriction_drops_outside_mass() {
        let dm = DisaggregationMatrix::from_triples(
            "pop",
            3,
            3,
            [
                (0, 0, 5.0),
                (1, 0, 2.0),
                (1, 1, 3.0), // straddles into target 1
                (2, 2, 9.0),
            ],
        )
        .unwrap();
        let sub = UniverseSubset::from_indices(vec![0, 1], vec![0], 3, 3).unwrap();
        let r = sub.restrict_dm(&dm).unwrap();
        assert_eq!(r.n_source(), 2);
        assert_eq!(r.n_target(), 1);
        assert_eq!(r.matrix().get(0, 0), 5.0);
        assert_eq!(r.matrix().get(1, 0), 2.0); // the 3.0 to target 1 dropped
        assert_eq!(r.nnz(), 2);
        // Shape mismatch rejected.
        let wrong = UniverseSubset::from_indices(vec![0], vec![0], 5, 3).unwrap();
        assert!(wrong.restrict_dm(&dm).is_err());
    }

    #[test]
    fn from_indices_validates() {
        assert!(UniverseSubset::from_indices(vec![], vec![0], 3, 3).is_err());
        assert!(UniverseSubset::from_indices(vec![0], vec![], 3, 3).is_err());
        assert!(UniverseSubset::from_indices(vec![3], vec![0], 3, 3).is_err());
        // Dedup and sort.
        let s = UniverseSubset::from_indices(vec![2, 0, 2], vec![1, 1], 3, 3).unwrap();
        assert_eq!(s.source_indices(), &[0, 2]);
        assert_eq!(s.n_target(), 1);
    }
}
