//! Tabular interchange: aggregate tables and crosswalk (disaggregation)
//! files as CSV.
//!
//! The paper's inputs are exactly these artifacts: "plain aggregate
//! tables" keyed by a geographic unit (§5 stresses that extensive methods
//! need no shape files, only tables), and "crosswalk relationship files"
//! like the HUD USPS zip–county crosswalk (§3.3). This module parses and
//! writes both, mapping string unit identifiers to dense indices via a
//! [`UnitIndex`].
//!
//! The CSV dialect is deliberately small: comma-separated, first line is a
//! header, fields may be double-quoted (with `""` escaping); no embedded
//! newlines.

use crate::aggregate::AggregateVector;
use crate::disagg::DisaggregationMatrix;
use crate::error::PartitionError;
use geoalign_linalg::CooMatrix;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors specific to table parsing, wrapped into [`PartitionError`].
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A line had the wrong number of fields.
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Fields expected.
        expected: usize,
        /// Fields found.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A quoted field was not terminated.
    UnterminatedQuote {
        /// 1-based line number.
        line: usize,
    },
    /// The input had no header or no data rows.
    Empty,
    /// A unit identifier appeared twice in an aggregate table.
    DuplicateUnit {
        /// 1-based line number.
        line: usize,
        /// The duplicated identifier.
        id: String,
    },
    /// A unit identifier is not present in the supplied index.
    UnknownUnit {
        /// 1-based line number.
        line: usize,
        /// The unknown identifier.
        id: String,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::BadArity {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            TableError::BadNumber { line, text } => {
                write!(f, "line {line}: '{text}' is not a number")
            }
            TableError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            TableError::Empty => write!(f, "table has no data"),
            TableError::DuplicateUnit { line, id } => {
                write!(f, "line {line}: duplicate unit '{id}'")
            }
            TableError::UnknownUnit { line, id } => {
                write!(f, "line {line}: unknown unit '{id}'")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl From<TableError> for PartitionError {
    fn from(e: TableError) -> Self {
        // Table errors surface through the partition error's NonFinite /
        // mismatch categories poorly; carry the message via Geometry? No —
        // extend PartitionError would be cleaner, but to keep the error
        // enum stable we wrap as a dedicated variant below.
        PartitionError::Table(e)
    }
}

/// A bidirectional mapping between string unit identifiers and dense
/// indices, fixing the unit order of vectors and matrices built from
/// tables.
#[derive(Debug, Clone, Default)]
pub struct UnitIndex {
    ids: Vec<String>,
    lookup: HashMap<String, usize>,
}

impl UnitIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index from identifiers in order; duplicates collapse to
    /// the first occurrence.
    pub fn from_ids<I, S>(ids: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut idx = Self::new();
        for id in ids {
            idx.intern(&id.into());
        }
        idx
    }

    /// Returns the index of `id`, interning it if new.
    pub fn intern(&mut self, id: &str) -> usize {
        if let Some(&i) = self.lookup.get(id) {
            return i;
        }
        let i = self.ids.len();
        self.ids.push(id.to_owned());
        self.lookup.insert(id.to_owned(), i);
        i
    }

    /// Returns the index of `id` if present.
    pub fn get(&self, id: &str) -> Option<usize> {
        self.lookup.get(id).copied()
    }

    /// The identifier at `index`.
    pub fn id(&self, index: usize) -> Option<&str> {
        self.ids.get(index).map(String::as_str)
    }

    /// All identifiers in index order.
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// Number of interned identifiers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Splits one CSV line into fields, honoring double quotes.
fn split_csv_line(line: &str, lineno: usize) -> Result<Vec<String>, TableError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TableError::UnterminatedQuote { line: lineno });
    }
    fields.push(cur);
    Ok(fields)
}

/// Quotes a CSV field when needed.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// An aggregate table: `(unit id, value)` rows for one attribute.
#[derive(Debug, Clone)]
pub struct AggregateTable {
    /// The attribute name (taken from the value column's header).
    pub attribute: String,
    /// Rows in file order.
    pub rows: Vec<(String, f64)>,
}

impl AggregateTable {
    /// Parses a two-column CSV (`unit,value`) with a header line.
    pub fn parse_csv(text: &str) -> Result<Self, TableError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let Some((hline, header)) = lines.next() else {
            return Err(TableError::Empty);
        };
        let hfields = split_csv_line(header, hline + 1)?;
        if hfields.len() != 2 {
            return Err(TableError::BadArity {
                line: hline + 1,
                expected: 2,
                got: hfields.len(),
            });
        }
        let attribute = hfields[1].trim().to_owned();
        let mut rows = Vec::new();
        let mut seen: HashMap<String, usize> = HashMap::new();
        for (i, line) in lines {
            let lineno = i + 1;
            let fields = split_csv_line(line, lineno)?;
            if fields.len() != 2 {
                return Err(TableError::BadArity {
                    line: lineno,
                    expected: 2,
                    got: fields.len(),
                });
            }
            let id = fields[0].trim().to_owned();
            if seen.insert(id.clone(), lineno).is_some() {
                return Err(TableError::DuplicateUnit { line: lineno, id });
            }
            let value: f64 = fields[1]
                .trim()
                .parse()
                .map_err(|_| TableError::BadNumber {
                    line: lineno,
                    text: fields[1].clone(),
                })?;
            rows.push((id, value));
        }
        if rows.is_empty() {
            return Err(TableError::Empty);
        }
        Ok(Self { attribute, rows })
    }

    /// Converts to an aggregate vector against a unit index. Units in the
    /// index but absent from the table default to 0; units in the table
    /// but absent from the index are an error.
    pub fn to_vector(&self, index: &UnitIndex) -> Result<AggregateVector, PartitionError> {
        let mut values = vec![0.0; index.len()];
        for (lineno, (id, v)) in self.rows.iter().enumerate() {
            let i = index.get(id).ok_or_else(|| TableError::UnknownUnit {
                line: lineno + 2,
                id: id.clone(),
            })?;
            values[i] = *v;
        }
        AggregateVector::new(self.attribute.clone(), values)
    }

    /// Builds a unit index from the table's own unit order.
    pub fn unit_index(&self) -> UnitIndex {
        UnitIndex::from_ids(self.rows.iter().map(|(id, _)| id.clone()))
    }

    /// Renders the table back to CSV (header + rows).
    pub fn to_csv(&self, unit_header: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{},{}", quote(unit_header), quote(&self.attribute));
        for (id, v) in &self.rows {
            let _ = writeln!(out, "{},{v}", quote(id));
        }
        out
    }
}

/// A crosswalk table: `(source id, target id, value)` rows — the file form
/// of a disaggregation matrix (e.g. the HUD USPS crosswalk).
#[derive(Debug, Clone)]
pub struct CrosswalkTable {
    /// Attribute name (value column header).
    pub attribute: String,
    /// Rows in file order.
    pub rows: Vec<(String, String, f64)>,
}

impl CrosswalkTable {
    /// Parses a three-column CSV (`source,target,value`) with a header.
    /// Duplicate `(source, target)` pairs are summed when converting.
    pub fn parse_csv(text: &str) -> Result<Self, TableError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let Some((hline, header)) = lines.next() else {
            return Err(TableError::Empty);
        };
        let hfields = split_csv_line(header, hline + 1)?;
        if hfields.len() != 3 {
            return Err(TableError::BadArity {
                line: hline + 1,
                expected: 3,
                got: hfields.len(),
            });
        }
        let attribute = hfields[2].trim().to_owned();
        let mut rows = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            let fields = split_csv_line(line, lineno)?;
            if fields.len() != 3 {
                return Err(TableError::BadArity {
                    line: lineno,
                    expected: 3,
                    got: fields.len(),
                });
            }
            let value: f64 = fields[2]
                .trim()
                .parse()
                .map_err(|_| TableError::BadNumber {
                    line: lineno,
                    text: fields[2].clone(),
                })?;
            rows.push((
                fields[0].trim().to_owned(),
                fields[1].trim().to_owned(),
                value,
            ));
        }
        if rows.is_empty() {
            return Err(TableError::Empty);
        }
        Ok(Self { attribute, rows })
    }

    /// Builds source and target unit indices from the table's own order.
    pub fn unit_indices(&self) -> (UnitIndex, UnitIndex) {
        let mut s = UnitIndex::new();
        let mut t = UnitIndex::new();
        for (src, tgt, _) in &self.rows {
            s.intern(src);
            t.intern(tgt);
        }
        (s, t)
    }

    /// Converts to a disaggregation matrix against explicit indices.
    pub fn to_matrix(
        &self,
        source: &UnitIndex,
        target: &UnitIndex,
    ) -> Result<DisaggregationMatrix, PartitionError> {
        let mut coo = CooMatrix::new(source.len(), target.len());
        for (lineno, (sid, tid, v)) in self.rows.iter().enumerate() {
            let i = source.get(sid).ok_or_else(|| TableError::UnknownUnit {
                line: lineno + 2,
                id: sid.clone(),
            })?;
            let j = target.get(tid).ok_or_else(|| TableError::UnknownUnit {
                line: lineno + 2,
                id: tid.clone(),
            })?;
            coo.push(i, j, *v)?;
        }
        DisaggregationMatrix::new(self.attribute.clone(), coo.to_csr())
    }

    /// Renders back to CSV.
    pub fn to_csv(&self, source_header: &str, target_header: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{},{},{}",
            quote(source_header),
            quote(target_header),
            quote(&self.attribute)
        );
        for (s, t, v) in &self.rows {
            let _ = writeln!(out, "{},{},{v}", quote(s), quote(t));
        }
        out
    }

    /// Builds a crosswalk table from a disaggregation matrix and indices.
    pub fn from_matrix(dm: &DisaggregationMatrix, source: &UnitIndex, target: &UnitIndex) -> Self {
        let rows = dm
            .matrix()
            .iter()
            .map(|(i, j, v)| {
                (
                    source.id(i).unwrap_or("?").to_owned(),
                    target.id(j).unwrap_or("?").to_owned(),
                    v,
                )
            })
            .collect();
        Self {
            attribute: dm.attribute().to_owned(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AGG: &str = "zip,steam\n10001,5946\n10002,210.5\n10003,3519\n";
    const XWALK: &str =
        "zip,county,population\n10001,New York,21102\n10003,New York,56024\n10003,Kings,1200\n";

    #[test]
    fn parse_aggregate_table() {
        let t = AggregateTable::parse_csv(AGG).unwrap();
        assert_eq!(t.attribute, "steam");
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[1], ("10002".to_owned(), 210.5));
        let idx = t.unit_index();
        assert_eq!(idx.len(), 3);
        let v = t.to_vector(&idx).unwrap();
        assert_eq!(v.values(), &[5946.0, 210.5, 3519.0]);
    }

    #[test]
    fn aggregate_table_defaults_missing_units_to_zero() {
        let t = AggregateTable::parse_csv(AGG).unwrap();
        let idx = UnitIndex::from_ids(["10001", "10002", "10003", "10099"]);
        let v = t.to_vector(&idx).unwrap();
        assert_eq!(v.values(), &[5946.0, 210.5, 3519.0, 0.0]);
        // Unknown table units fail.
        let small = UnitIndex::from_ids(["10001"]);
        assert!(t.to_vector(&small).is_err());
    }

    #[test]
    fn aggregate_table_errors() {
        assert_eq!(
            AggregateTable::parse_csv("").unwrap_err(),
            TableError::Empty
        );
        assert_eq!(
            AggregateTable::parse_csv("zip,steam\n").unwrap_err(),
            TableError::Empty
        );
        assert!(matches!(
            AggregateTable::parse_csv("zip,steam\n10001\n"),
            Err(TableError::BadArity {
                line: 2,
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            AggregateTable::parse_csv("zip,steam\n10001,abc\n"),
            Err(TableError::BadNumber { line: 2, .. })
        ));
        assert!(matches!(
            AggregateTable::parse_csv("zip,steam\n10001,1\n10001,2\n"),
            Err(TableError::DuplicateUnit { line: 3, .. })
        ));
    }

    #[test]
    fn quoted_fields_roundtrip() {
        let t =
            AggregateTable::parse_csv("zip,\"steam, total\"\n\"100,01\",5\n\"say \"\"hi\"\"\",7\n")
                .unwrap();
        assert_eq!(t.attribute, "steam, total");
        assert_eq!(t.rows[0].0, "100,01");
        assert_eq!(t.rows[1].0, "say \"hi\"");
        let csv = t.to_csv("zip");
        let back = AggregateTable::parse_csv(&csv).unwrap();
        assert_eq!(back.rows, t.rows);
        assert_eq!(back.attribute, t.attribute);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(matches!(
            AggregateTable::parse_csv("zip,steam\n\"abc,1\n"),
            Err(TableError::UnterminatedQuote { line: 2 })
        ));
    }

    #[test]
    fn parse_crosswalk_table() {
        let x = CrosswalkTable::parse_csv(XWALK).unwrap();
        assert_eq!(x.attribute, "population");
        assert_eq!(x.rows.len(), 3);
        let (s, t) = x.unit_indices();
        assert_eq!(s.ids(), &["10001".to_owned(), "10003".to_owned()]);
        assert_eq!(t.ids(), &["New York".to_owned(), "Kings".to_owned()]);
        let dm = x.to_matrix(&s, &t).unwrap();
        assert_eq!(dm.n_source(), 2);
        assert_eq!(dm.n_target(), 2);
        assert_eq!(dm.matrix().get(1, 0), 56024.0);
        assert_eq!(dm.matrix().get(1, 1), 1200.0);
    }

    #[test]
    fn crosswalk_duplicates_sum() {
        let x = CrosswalkTable::parse_csv("s,t,v\na,b,1\na,b,2\n").unwrap();
        let (s, t) = x.unit_indices();
        let dm = x.to_matrix(&s, &t).unwrap();
        assert_eq!(dm.matrix().get(0, 0), 3.0);
    }

    #[test]
    fn crosswalk_roundtrip_via_matrix() {
        let x = CrosswalkTable::parse_csv(XWALK).unwrap();
        let (s, t) = x.unit_indices();
        let dm = x.to_matrix(&s, &t).unwrap();
        let back = CrosswalkTable::from_matrix(&dm, &s, &t);
        let dm2 = back.to_matrix(&s, &t).unwrap();
        assert_eq!(dm.matrix(), dm2.matrix());
        // CSV round trip too.
        let csv = back.to_csv("zip", "county");
        let reparsed = CrosswalkTable::parse_csv(&csv).unwrap();
        assert_eq!(reparsed.rows.len(), back.rows.len());
    }

    #[test]
    fn unit_index_basics() {
        let mut idx = UnitIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.intern("a"), 0);
        assert_eq!(idx.intern("b"), 1);
        assert_eq!(idx.intern("a"), 0);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get("b"), Some(1));
        assert_eq!(idx.get("zzz"), None);
        assert_eq!(idx.id(0), Some("a"));
        assert_eq!(idx.id(9), None);
    }
}
