//! Disaggregation matrices (paper §3.3, Eq. 13).
//!
//! `DM_x[i, j]` is the aggregate of attribute `x` in the intersection of
//! source unit `i` and target unit `j`. In practice these are the
//! "crosswalk relationship files" agencies publish (e.g. the HUD USPS
//! zip–county crosswalk the paper uses). Rows index source units, columns
//! target units; the matrix is stored sparse.

use crate::aggregate::AggregateVector;
use crate::error::PartitionError;
use geoalign_linalg::{CooMatrix, CsrMatrix};

/// A sparse disaggregation matrix for one attribute between a source and a
/// target unit system.
#[derive(Debug, Clone)]
pub struct DisaggregationMatrix {
    attribute: String,
    matrix: CsrMatrix,
}

impl DisaggregationMatrix {
    /// Wraps a CSR matrix as a disaggregation matrix. All entries must be
    /// non-negative and finite.
    pub fn new(attribute: impl Into<String>, matrix: CsrMatrix) -> Result<Self, PartitionError> {
        for (i, _, v) in matrix.iter() {
            if !v.is_finite() {
                return Err(PartitionError::NonFinite);
            }
            if v < 0.0 {
                return Err(PartitionError::NegativeAggregate { index: i, value: v });
            }
        }
        Ok(Self {
            attribute: attribute.into(),
            matrix,
        })
    }

    /// Builds from a mergeable aggregate state — the delta path of the
    /// streaming pipeline. Folding a new batch into an
    /// [`AggState`](geoalign_agg::AggState) and rebuilding through here
    /// yields the exact matrix a from-scratch aggregation of all points
    /// would produce, because the state's cell sums are exact and rounded
    /// once.
    pub fn from_state(state: &geoalign_agg::AggState) -> Result<Self, PartitionError> {
        let fin = state.finalize();
        Self::from_triples(
            &fin.attribute,
            state.n_source(),
            state.n_target(),
            fin.triples.iter().copied(),
        )
    }

    /// Builds from `(source, target, value)` triples.
    pub fn from_triples(
        attribute: impl Into<String>,
        n_source: usize,
        n_target: usize,
        triples: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, PartitionError> {
        let mut coo = CooMatrix::new(n_source, n_target);
        for (i, j, v) in triples {
            coo.push(i, j, v)?;
        }
        Self::new(attribute, coo.to_csr())
    }

    /// Attribute name.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The underlying sparse matrix (rows = source units, cols = target
    /// units).
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Number of source units.
    pub fn n_source(&self) -> usize {
        self.matrix.nrows()
    }

    /// Number of target units.
    pub fn n_target(&self) -> usize {
        self.matrix.ncols()
    }

    /// Number of stored intersections.
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// The attribute's aggregate vector in source units, implied by the
    /// matrix (row sums) — `a_x^s` per Eq. 6.
    pub fn source_aggregates(&self) -> Result<AggregateVector, PartitionError> {
        AggregateVector::new(self.attribute.clone(), self.matrix.row_sums())
    }

    /// The attribute's aggregate vector in target units, implied by the
    /// matrix (column sums) — `a_x^t` per Eq. 7.
    pub fn target_aggregates(&self) -> Result<AggregateVector, PartitionError> {
        AggregateVector::new(self.attribute.clone(), self.matrix.col_sums())
    }

    /// Checks the volume-preserving property (Eq. 10 / Eq. 16) against a
    /// source aggregate vector: every row of the matrix must sum to the
    /// corresponding source aggregate within `rel_tol` (relative to the
    /// aggregate's own scale, with an absolute floor for zero entries).
    pub fn is_volume_preserving(
        &self,
        source: &AggregateVector,
        rel_tol: f64,
    ) -> Result<bool, PartitionError> {
        if source.len() != self.n_source() {
            return Err(PartitionError::SystemMismatch {
                what: "volume preservation check",
                left: source.len(),
                right: self.n_source(),
            });
        }
        let sums = self.matrix.row_sums();
        Ok(sums.iter().zip(source.values()).all(|(&s, &a)| {
            let tol = rel_tol * a.abs().max(1e-12);
            (s - a).abs() <= tol
        }))
    }

    /// Returns a renamed copy (same matrix).
    pub fn renamed(&self, attribute: impl Into<String>) -> DisaggregationMatrix {
        DisaggregationMatrix {
            attribute: attribute.into(),
            matrix: self.matrix.clone(),
        }
    }

    /// Consumes the wrapper, returning the raw CSR matrix.
    pub fn into_matrix(self) -> CsrMatrix {
        self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DisaggregationMatrix {
        // 2 source units × 3 target units:
        //   source 0 splits 10/5 across targets 0 and 1;
        //   source 1 sits entirely in target 2 with 7.
        DisaggregationMatrix::from_triples("pop", 2, 3, [(0, 0, 10.0), (0, 1, 5.0), (1, 2, 7.0)])
            .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let dm = sample();
        assert_eq!(dm.attribute(), "pop");
        assert_eq!(dm.n_source(), 2);
        assert_eq!(dm.n_target(), 3);
        assert_eq!(dm.nnz(), 3);
    }

    #[test]
    fn rejects_invalid_entries() {
        assert!(DisaggregationMatrix::from_triples("x", 1, 1, [(0, 0, -1.0)]).is_err());
        assert!(DisaggregationMatrix::from_triples("x", 1, 1, [(0, 0, f64::NAN)]).is_err());
        assert!(DisaggregationMatrix::from_triples("x", 1, 1, [(1, 0, 1.0)]).is_err());
    }

    #[test]
    fn implied_aggregates() {
        let dm = sample();
        assert_eq!(dm.source_aggregates().unwrap().values(), &[15.0, 7.0]);
        assert_eq!(dm.target_aggregates().unwrap().values(), &[10.0, 5.0, 7.0]);
    }

    #[test]
    fn volume_preservation() {
        let dm = sample();
        let good = AggregateVector::new("pop", vec![15.0, 7.0]).unwrap();
        assert!(dm.is_volume_preserving(&good, 1e-12).unwrap());
        let off = AggregateVector::new("pop", vec![15.0, 8.0]).unwrap();
        assert!(!dm.is_volume_preserving(&off, 1e-6).unwrap());
        // Within a loose relative tolerance it passes.
        assert!(dm.is_volume_preserving(&off, 0.2).unwrap());
        let wrong_len = AggregateVector::new("pop", vec![1.0]).unwrap();
        assert!(dm.is_volume_preserving(&wrong_len, 1e-6).is_err());
    }

    #[test]
    fn rename_and_unwrap() {
        let dm = sample().renamed("households");
        assert_eq!(dm.attribute(), "households");
        let m = dm.into_matrix();
        assert_eq!(m.nnz(), 3);
    }
}
