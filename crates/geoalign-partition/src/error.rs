//! Error types for the partition layer.

use std::fmt;

/// Errors raised when constructing or combining unit systems, aggregate
/// vectors and disaggregation matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// A unit system was created with no units.
    EmptySystem,
    /// An aggregate vector's length does not match its unit system.
    LengthMismatch {
        /// Expected number of units.
        expected: usize,
        /// Supplied number of values.
        got: usize,
    },
    /// An aggregate value was negative where counts are required.
    NegativeAggregate {
        /// Index of the offending unit.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A value was NaN or infinite.
    NonFinite,
    /// Two objects refer to unit systems of different sizes.
    SystemMismatch {
        /// Context of the mismatch.
        what: &'static str,
        /// Left-hand size.
        left: usize,
        /// Right-hand size.
        right: usize,
    },
    /// The underlying geometry failed.
    Geometry(geoalign_geom::GeomError),
    /// The underlying linear algebra failed.
    Linalg(geoalign_linalg::LinalgError),
    /// A point fell outside every unit during crosswalk aggregation.
    PointOutsideUniverse {
        /// Index of the point in its dataset.
        index: usize,
    },
    /// A tabular input failed to parse or reference the expected units.
    Table(crate::table::TableError),
    /// A parallel job failed (a task panicked).
    Exec(geoalign_exec::ExecError),
    /// The underlying aggregate-state layer failed.
    Aggregate(geoalign_agg::AggError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::EmptySystem => write!(f, "unit system has no units"),
            PartitionError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "aggregate vector length {got} does not match {expected} units"
                )
            }
            PartitionError::NegativeAggregate { index, value } => {
                write!(f, "negative aggregate {value} at unit {index}")
            }
            PartitionError::NonFinite => write!(f, "non-finite value"),
            PartitionError::SystemMismatch { what, left, right } => {
                write!(f, "unit-system mismatch in {what}: {left} vs {right}")
            }
            PartitionError::Geometry(e) => write!(f, "geometry error: {e}"),
            PartitionError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            PartitionError::PointOutsideUniverse { index } => {
                write!(f, "point {index} lies outside every unit of the universe")
            }
            PartitionError::Table(e) => write!(f, "table error: {e}"),
            PartitionError::Exec(e) => write!(f, "execution error: {e}"),
            PartitionError::Aggregate(e) => write!(f, "aggregate error: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Geometry(e) => Some(e),
            PartitionError::Linalg(e) => Some(e),
            PartitionError::Table(e) => Some(e),
            PartitionError::Exec(e) => Some(e),
            PartitionError::Aggregate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<geoalign_geom::GeomError> for PartitionError {
    fn from(e: geoalign_geom::GeomError) -> Self {
        PartitionError::Geometry(e)
    }
}

impl From<geoalign_linalg::LinalgError> for PartitionError {
    fn from(e: geoalign_linalg::LinalgError) -> Self {
        PartitionError::Linalg(e)
    }
}

impl From<geoalign_exec::ExecError> for PartitionError {
    fn from(e: geoalign_exec::ExecError) -> Self {
        PartitionError::Exec(e)
    }
}

impl From<geoalign_agg::AggError> for PartitionError {
    fn from(e: geoalign_agg::AggError) -> Self {
        PartitionError::Aggregate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = PartitionError::LengthMismatch {
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
        let g: PartitionError = geoalign_geom::GeomError::NoSeeds.into();
        assert!(g.to_string().contains("geometry"));
        use std::error::Error;
        assert!(g.source().is_some());
        let l: PartitionError = geoalign_linalg::LinalgError::Singular.into();
        assert!(l.source().is_some());
        assert!(PartitionError::EmptySystem.source().is_none());
    }
}
