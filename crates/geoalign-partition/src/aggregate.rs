//! Aggregate vectors: an attribute's values per unit of a unit system
//! (the `a_x^y` vectors of paper §2.1).

use crate::error::PartitionError;

/// The aggregate vector of one attribute over one unit system.
///
/// Values are non-negative (counts, amounts); the unit system is referenced
/// by length only — the structs are deliberately decoupled so tabular data
/// (plain aggregate tables without shape files, which the paper §5 argues
/// extensive methods must support) can be loaded directly.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateVector {
    attribute: String,
    values: Vec<f64>,
}

impl AggregateVector {
    /// Builds an aggregate vector; rejects empty, negative or non-finite
    /// values.
    pub fn new(attribute: impl Into<String>, values: Vec<f64>) -> Result<Self, PartitionError> {
        if values.is_empty() {
            return Err(PartitionError::EmptySystem);
        }
        for (index, &value) in values.iter().enumerate() {
            if !value.is_finite() {
                return Err(PartitionError::NonFinite);
            }
            if value < 0.0 {
                return Err(PartitionError::NegativeAggregate { index, value });
            }
        }
        Ok(Self {
            attribute: attribute.into(),
            values,
        })
    }

    /// Attribute name (e.g. `"population"`).
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The per-unit values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of units covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: construction rejects empty vectors.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum over all units.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Max-normalization `a' = a / max_i a[i]` — the scale adjustment of
    /// paper §3.4 applied before weight learning, so that references
    /// measured on different scales contribute comparably. A zero vector
    /// normalizes to itself.
    pub fn normalized(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.normalized_into(&mut out);
        out
    }

    /// [`AggregateVector::normalized`] into a reusable buffer (cleared
    /// and overwritten), so per-query hot paths skip the allocation.
    pub fn normalized_into(&self, out: &mut Vec<f64>) {
        out.clear();
        let max = self.values.iter().copied().fold(0.0f64, f64::max);
        if max == 0.0 {
            out.extend_from_slice(&self.values);
            return;
        }
        out.extend(self.values.iter().map(|v| v / max));
    }

    /// Consumes the vector, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Returns a renamed copy (same values).
    pub fn renamed(&self, attribute: impl Into<String>) -> AggregateVector {
        AggregateVector {
            attribute: attribute.into(),
            values: self.values.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(AggregateVector::new("a", vec![]).is_err());
        assert!(AggregateVector::new("a", vec![1.0, f64::NAN]).is_err());
        assert_eq!(
            AggregateVector::new("a", vec![1.0, -2.0]).unwrap_err(),
            PartitionError::NegativeAggregate {
                index: 1,
                value: -2.0
            }
        );
        let v = AggregateVector::new("a", vec![1.0, 2.0]).unwrap();
        assert_eq!(v.attribute(), "a");
        assert_eq!(v.len(), 2);
        assert_eq!(v.total(), 3.0);
    }

    #[test]
    fn normalization_divides_by_max() {
        let v = AggregateVector::new("a", vec![2.0, 4.0, 1.0]).unwrap();
        assert_eq!(v.normalized(), vec![0.5, 1.0, 0.25]);
        // Zero vector stays zero (no division by zero).
        let z = AggregateVector::new("z", vec![0.0, 0.0]).unwrap();
        assert_eq!(z.normalized(), vec![0.0, 0.0]);
    }

    #[test]
    fn rename_preserves_values() {
        let v = AggregateVector::new("a", vec![1.0]).unwrap();
        let r = v.renamed("b");
        assert_eq!(r.attribute(), "b");
        assert_eq!(r.values(), v.values());
        assert_eq!(v.into_values(), vec![1.0]);
    }
}
