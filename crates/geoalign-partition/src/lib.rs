//! Partition layer of the GeoAlign reproduction: unit systems, aggregate
//! vectors, disaggregation matrices, spatial overlay and point crosswalk
//! aggregation — the data model of paper §2–3.
//!
//! * [`PolygonUnitSystem`], [`IntervalUnitSystem`], [`BoxUnitSystem`] —
//!   partitions of 2-D, 1-D and n-D universes;
//! * [`AggregateVector`] — an attribute's per-unit aggregates, with the
//!   max-normalization of §3.4;
//! * [`DisaggregationMatrix`] — the sparse `DM_x` of Eq. 13, with the
//!   volume-preservation audit of Eq. 10/16;
//! * [`Overlay`] — the intersection unit system `U^st` of Eq. 4 plus the
//!   measure (area) disaggregation matrix for areal weighting;
//! * [`crosswalk::aggregate_points`] — ArcGIS-style aggregation of point
//!   records to source, target and intersection levels at once.

#![warn(missing_docs)]

pub mod aggregate;
pub mod crosswalk;
pub mod disagg;
pub mod error;
mod obs;
pub mod overlay;
pub mod subset;
pub mod table;
pub mod unit_system;

pub use aggregate::AggregateVector;
pub use crosswalk::{
    aggregate_points, aggregate_points_state, aggregate_points_with, CrosswalkAggregates,
    OutsidePolicy, WeightedPoint,
};
pub use disagg::DisaggregationMatrix;
pub use error::PartitionError;
pub use overlay::{Overlay, OverlayPiece};
pub use subset::UniverseSubset;
pub use table::{AggregateTable, CrosswalkTable, TableError, UnitIndex};
pub use unit_system::{BoxUnitSystem, IntervalUnitSystem, PolygonUnitSystem};
