//! Point-data crosswalk aggregation.
//!
//! The paper builds its reference data by aggregating individual-level GIS
//! records "for the intersection area of the two geographic types to form
//! their disaggregation matrices" (§4.1, done there with ArcGIS Pro). This
//! module is the open equivalent: given weighted points and two polygon
//! unit systems, it produces the aggregate vectors at the source and target
//! levels and the disaggregation matrix between them, in one pass.

use crate::aggregate::AggregateVector;
use crate::disagg::DisaggregationMatrix;
use crate::error::PartitionError;
use crate::unit_system::PolygonUnitSystem;
use geoalign_exec::Executor;
use geoalign_geom::Point2;
use geoalign_linalg::CooMatrix;

/// A point record with a weight (1 for plain counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedPoint {
    /// Location of the record.
    pub pos: Point2,
    /// Contribution of the record to every aggregate it falls into.
    pub weight: f64,
}

impl WeightedPoint {
    /// A unit-weight record.
    pub fn unit(pos: Point2) -> Self {
        Self { pos, weight: 1.0 }
    }
}

/// What to do with records that fall outside one of the unit systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutsidePolicy {
    /// Skip the record silently (count reported in the result).
    #[default]
    Skip,
    /// Fail the aggregation with [`PartitionError::PointOutsideUniverse`].
    Error,
}

/// Result of a crosswalk aggregation: the attribute observed at all three
/// levels of paper Figure 4.
#[derive(Debug, Clone)]
pub struct CrosswalkAggregates {
    /// Aggregates per source unit (`a^s`).
    pub source: AggregateVector,
    /// Aggregates per target unit (`a^t`) — the ground truth the
    /// evaluation compares estimates against.
    pub target: AggregateVector,
    /// The disaggregation matrix between source and target units.
    pub dm: DisaggregationMatrix,
    /// Number of records skipped because they fell outside a system
    /// (always 0 under [`OutsidePolicy::Error`]).
    pub skipped: usize,
}

/// Aggregates weighted point records of `attribute` into the source and
/// target systems and their intersections.
///
/// A record contributes to the source unit containing it, the target unit
/// containing it, and the corresponding `(source, target)` intersection
/// cell of the disaggregation matrix. Records outside either system follow
/// `policy`.
pub fn aggregate_points(
    attribute: &str,
    points: &[WeightedPoint],
    source: &PolygonUnitSystem,
    target: &PolygonUnitSystem,
    policy: OutsidePolicy,
) -> Result<CrosswalkAggregates, PartitionError> {
    aggregate_points_with(
        attribute,
        points,
        source,
        target,
        policy,
        Executor::global(),
    )
}

/// Per-chunk partial state of a point aggregation: the two marginal
/// accumulators, the COO triples in point order, and the skip count.
struct ChunkAggregates {
    src: Vec<f64>,
    tgt: Vec<f64>,
    triples: Vec<(usize, usize, f64)>,
    skipped: usize,
}

/// [`aggregate_points`] on an explicit executor.
///
/// Points fan out in chunks; each chunk accumulates its own `src`/`tgt`
/// partial sums and COO triples, and the partials merge strictly in chunk
/// order. Chunk boundaries depend only on `points.len()`, so the result
/// is bit-identical at every thread count; errors surface for the
/// lowest-indexed offending point, exactly like a sequential scan.
pub fn aggregate_points_with(
    attribute: &str,
    points: &[WeightedPoint],
    source: &PolygonUnitSystem,
    target: &PolygonUnitSystem,
    policy: OutsidePolicy,
    exec: Executor,
) -> Result<CrosswalkAggregates, PartitionError> {
    let per_chunk = exec.par_chunks(points, |offset, chunk| {
        let mut part = ChunkAggregates {
            src: vec![0.0; source.len()],
            tgt: vec![0.0; target.len()],
            triples: Vec::new(),
            skipped: 0,
        };
        for (k, p) in chunk.iter().enumerate() {
            let index = offset + k;
            if !p.pos.is_finite() || !p.weight.is_finite() {
                return Err(PartitionError::NonFinite);
            }
            let (Some(si), Some(ti)) = (source.locate(p.pos), target.locate(p.pos)) else {
                match policy {
                    OutsidePolicy::Skip => {
                        part.skipped += 1;
                        continue;
                    }
                    OutsidePolicy::Error => {
                        return Err(PartitionError::PointOutsideUniverse { index })
                    }
                }
            };
            part.src[si] += p.weight;
            part.tgt[ti] += p.weight;
            part.triples.push((si, ti, p.weight));
        }
        Ok(part)
    })?;

    // Ordered merge: chunks are ascending point ranges, so folding them
    // left-to-right reproduces the sequential accumulation order and the
    // first error is the sequential first error.
    let mut src = vec![0.0; source.len()];
    let mut tgt = vec![0.0; target.len()];
    let mut coo = CooMatrix::new(source.len(), target.len());
    let mut skipped = 0usize;
    for chunk in per_chunk {
        let part = chunk?;
        for (acc, v) in src.iter_mut().zip(&part.src) {
            *acc += v;
        }
        for (acc, v) in tgt.iter_mut().zip(&part.tgt) {
            *acc += v;
        }
        for (si, ti, w) in part.triples {
            coo.push(si, ti, w)?;
        }
        skipped += part.skipped;
    }
    Ok(CrosswalkAggregates {
        source: AggregateVector::new(attribute, src)?,
        target: AggregateVector::new(attribute, tgt)?,
        dm: DisaggregationMatrix::new(attribute, coo.to_csr())?,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_geom::Polygon;

    fn source_sys() -> PolygonUnitSystem {
        // Two vertical strips of [0,2]×[0,2].
        PolygonUnitSystem::new(
            "strips",
            vec![
                Polygon::rect(Point2::new(0.0, 0.0), Point2::new(1.0, 2.0)).unwrap(),
                Polygon::rect(Point2::new(1.0, 0.0), Point2::new(2.0, 2.0)).unwrap(),
            ],
        )
        .unwrap()
    }

    fn target_sys() -> PolygonUnitSystem {
        // Two horizontal bands of [0,2]×[0,2].
        PolygonUnitSystem::new(
            "bands",
            vec![
                Polygon::rect(Point2::new(0.0, 0.0), Point2::new(2.0, 1.0)).unwrap(),
                Polygon::rect(Point2::new(0.0, 1.0), Point2::new(2.0, 2.0)).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn aggregation_hits_all_three_levels() {
        let pts = vec![
            WeightedPoint::unit(Point2::new(0.5, 0.5)), // strip 0, band 0
            WeightedPoint::unit(Point2::new(0.5, 1.5)), // strip 0, band 1
            WeightedPoint::unit(Point2::new(1.5, 0.5)), // strip 1, band 0
            WeightedPoint {
                pos: Point2::new(1.5, 1.5),
                weight: 2.0,
            }, // strip 1, band 1
        ];
        let agg = aggregate_points(
            "x",
            &pts,
            &source_sys(),
            &target_sys(),
            OutsidePolicy::Error,
        )
        .unwrap();
        assert_eq!(agg.source.values(), &[2.0, 3.0]);
        assert_eq!(agg.target.values(), &[2.0, 3.0]);
        assert_eq!(agg.dm.matrix().get(0, 0), 1.0);
        assert_eq!(agg.dm.matrix().get(1, 1), 2.0);
        assert_eq!(agg.skipped, 0);
        // DM is consistent with both marginals.
        assert_eq!(agg.dm.matrix().row_sums(), agg.source.values());
        assert_eq!(agg.dm.matrix().col_sums(), agg.target.values());
    }

    #[test]
    fn outside_policy_skip_counts() {
        let pts = vec![
            WeightedPoint::unit(Point2::new(0.5, 0.5)),
            WeightedPoint::unit(Point2::new(9.0, 9.0)), // outside
        ];
        let agg =
            aggregate_points("x", &pts, &source_sys(), &target_sys(), OutsidePolicy::Skip).unwrap();
        assert_eq!(agg.skipped, 1);
        assert_eq!(agg.source.total(), 1.0);
    }

    #[test]
    fn outside_policy_error_fails() {
        let pts = vec![WeightedPoint::unit(Point2::new(9.0, 9.0))];
        let err = aggregate_points(
            "x",
            &pts,
            &source_sys(),
            &target_sys(),
            OutsidePolicy::Error,
        )
        .unwrap_err();
        assert_eq!(err, PartitionError::PointOutsideUniverse { index: 0 });
    }

    #[test]
    fn non_finite_records_rejected() {
        let pts = vec![WeightedPoint {
            pos: Point2::new(0.5, 0.5),
            weight: f64::NAN,
        }];
        assert!(
            aggregate_points("x", &pts, &source_sys(), &target_sys(), OutsidePolicy::Skip).is_err()
        );
    }

    #[test]
    fn empty_point_set_gives_zero_aggregates() {
        let agg =
            aggregate_points("x", &[], &source_sys(), &target_sys(), OutsidePolicy::Skip).unwrap();
        assert_eq!(agg.source.total(), 0.0);
        assert_eq!(agg.target.total(), 0.0);
        assert_eq!(agg.dm.nnz(), 0);
    }
}
