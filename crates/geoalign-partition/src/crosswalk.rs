//! Point-data crosswalk aggregation.
//!
//! The paper builds its reference data by aggregating individual-level GIS
//! records "for the intersection area of the two geographic types to form
//! their disaggregation matrices" (§4.1, done there with ArcGIS Pro). This
//! module is the open equivalent: given weighted points and two polygon
//! unit systems, it produces the aggregate vectors at the source and target
//! levels and the disaggregation matrix between them, in one pass.

use crate::aggregate::AggregateVector;
use crate::disagg::DisaggregationMatrix;
use crate::error::PartitionError;
use crate::unit_system::PolygonUnitSystem;
use geoalign_agg::AggState;
use geoalign_exec::Executor;
use geoalign_geom::Point2;

/// A point record with a weight (1 for plain counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedPoint {
    /// Location of the record.
    pub pos: Point2,
    /// Contribution of the record to every aggregate it falls into.
    pub weight: f64,
}

impl WeightedPoint {
    /// A unit-weight record.
    pub fn unit(pos: Point2) -> Self {
        Self { pos, weight: 1.0 }
    }
}

/// What to do with records that fall outside one of the unit systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutsidePolicy {
    /// Skip the record silently (count reported in the result).
    #[default]
    Skip,
    /// Fail the aggregation with [`PartitionError::PointOutsideUniverse`].
    Error,
}

/// Result of a crosswalk aggregation: the attribute observed at all three
/// levels of paper Figure 4.
#[derive(Debug, Clone)]
pub struct CrosswalkAggregates {
    /// Aggregates per source unit (`a^s`).
    pub source: AggregateVector,
    /// Aggregates per target unit (`a^t`) — the ground truth the
    /// evaluation compares estimates against.
    pub target: AggregateVector,
    /// The disaggregation matrix between source and target units.
    pub dm: DisaggregationMatrix,
    /// Number of records skipped because they fell outside a system
    /// (always 0 under [`OutsidePolicy::Error`]).
    pub skipped: usize,
}

/// Aggregates weighted point records of `attribute` into the source and
/// target systems and their intersections.
///
/// A record contributes to the source unit containing it, the target unit
/// containing it, and the corresponding `(source, target)` intersection
/// cell of the disaggregation matrix. Records outside either system follow
/// `policy`.
pub fn aggregate_points(
    attribute: &str,
    points: &[WeightedPoint],
    source: &PolygonUnitSystem,
    target: &PolygonUnitSystem,
    policy: OutsidePolicy,
) -> Result<CrosswalkAggregates, PartitionError> {
    aggregate_points_with(
        attribute,
        points,
        source,
        target,
        policy,
        Executor::global(),
    )
}

/// [`aggregate_points`] on an explicit executor.
///
/// Points fan out in chunks; each chunk folds into its own [`AggState`]
/// partial and the partials merge strictly in chunk order. The state's
/// cell sums are exact, so the merged state — and everything finalized
/// from it — is bit-identical at every thread count *and* under any other
/// split of the same points (see [`aggregate_points_state`]); errors
/// surface for the lowest-indexed offending point, exactly like a
/// sequential scan.
pub fn aggregate_points_with(
    attribute: &str,
    points: &[WeightedPoint],
    source: &PolygonUnitSystem,
    target: &PolygonUnitSystem,
    policy: OutsidePolicy,
    exec: Executor,
) -> Result<CrosswalkAggregates, PartitionError> {
    let state = aggregate_points_state(attribute, points, source, target, policy, exec)?;
    CrosswalkAggregates::from_state(&state)
}

/// Aggregates weighted points into a mergeable [`AggState`] partial — the
/// two-step form of [`aggregate_points_with`]. The returned state can be
/// serialized, shipped and merged with states built from other batches of
/// the same universe; folding any partition of the same points yields
/// bit-identical state.
pub fn aggregate_points_state(
    attribute: &str,
    points: &[WeightedPoint],
    source: &PolygonUnitSystem,
    target: &PolygonUnitSystem,
    policy: OutsidePolicy,
    exec: Executor,
) -> Result<AggState, PartitionError> {
    let per_chunk = exec.par_chunks(points, |offset, chunk| {
        let mut part = AggState::new(attribute, source.len(), target.len())?;
        for (k, p) in chunk.iter().enumerate() {
            let index = offset + k;
            if !p.pos.is_finite() || !p.weight.is_finite() {
                return Err(PartitionError::NonFinite);
            }
            let (Some(si), Some(ti)) = (source.locate(p.pos), target.locate(p.pos)) else {
                match policy {
                    OutsidePolicy::Skip => {
                        part.record_skipped();
                        continue;
                    }
                    OutsidePolicy::Error => {
                        return Err(PartitionError::PointOutsideUniverse { index })
                    }
                }
            };
            part.absorb(si, ti, p.weight)?;
        }
        Ok(part)
    })?;

    // Ordered fold: chunks are ascending point ranges, so folding them
    // left-to-right surfaces the sequential first error. The merge itself
    // is order-independent — the state is exact.
    let mut state = AggState::new(attribute, source.len(), target.len())?;
    for chunk in per_chunk {
        state.merge(&chunk?)?;
    }
    Ok(state)
}

impl CrosswalkAggregates {
    /// The accessor half of the two-step aggregation: rounds a mergeable
    /// [`AggState`] into the three-level view the estimator consumes.
    pub fn from_state(state: &AggState) -> Result<Self, PartitionError> {
        let fin = state.finalize();
        let dm = DisaggregationMatrix::from_triples(
            &fin.attribute,
            state.n_source(),
            state.n_target(),
            fin.triples.iter().copied(),
        )?;
        Ok(CrosswalkAggregates {
            source: AggregateVector::new(&fin.attribute, fin.source)?,
            target: AggregateVector::new(&fin.attribute, fin.target)?,
            dm,
            skipped: fin.skipped as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_geom::Polygon;

    fn source_sys() -> PolygonUnitSystem {
        // Two vertical strips of [0,2]×[0,2].
        PolygonUnitSystem::new(
            "strips",
            vec![
                Polygon::rect(Point2::new(0.0, 0.0), Point2::new(1.0, 2.0)).unwrap(),
                Polygon::rect(Point2::new(1.0, 0.0), Point2::new(2.0, 2.0)).unwrap(),
            ],
        )
        .unwrap()
    }

    fn target_sys() -> PolygonUnitSystem {
        // Two horizontal bands of [0,2]×[0,2].
        PolygonUnitSystem::new(
            "bands",
            vec![
                Polygon::rect(Point2::new(0.0, 0.0), Point2::new(2.0, 1.0)).unwrap(),
                Polygon::rect(Point2::new(0.0, 1.0), Point2::new(2.0, 2.0)).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn aggregation_hits_all_three_levels() {
        let pts = vec![
            WeightedPoint::unit(Point2::new(0.5, 0.5)), // strip 0, band 0
            WeightedPoint::unit(Point2::new(0.5, 1.5)), // strip 0, band 1
            WeightedPoint::unit(Point2::new(1.5, 0.5)), // strip 1, band 0
            WeightedPoint {
                pos: Point2::new(1.5, 1.5),
                weight: 2.0,
            }, // strip 1, band 1
        ];
        let agg = aggregate_points(
            "x",
            &pts,
            &source_sys(),
            &target_sys(),
            OutsidePolicy::Error,
        )
        .unwrap();
        assert_eq!(agg.source.values(), &[2.0, 3.0]);
        assert_eq!(agg.target.values(), &[2.0, 3.0]);
        assert_eq!(agg.dm.matrix().get(0, 0), 1.0);
        assert_eq!(agg.dm.matrix().get(1, 1), 2.0);
        assert_eq!(agg.skipped, 0);
        // DM is consistent with both marginals.
        assert_eq!(agg.dm.matrix().row_sums(), agg.source.values());
        assert_eq!(agg.dm.matrix().col_sums(), agg.target.values());
    }

    #[test]
    fn outside_policy_skip_counts() {
        let pts = vec![
            WeightedPoint::unit(Point2::new(0.5, 0.5)),
            WeightedPoint::unit(Point2::new(9.0, 9.0)), // outside
        ];
        let agg =
            aggregate_points("x", &pts, &source_sys(), &target_sys(), OutsidePolicy::Skip).unwrap();
        assert_eq!(agg.skipped, 1);
        assert_eq!(agg.source.total(), 1.0);
    }

    #[test]
    fn outside_policy_error_fails() {
        let pts = vec![WeightedPoint::unit(Point2::new(9.0, 9.0))];
        let err = aggregate_points(
            "x",
            &pts,
            &source_sys(),
            &target_sys(),
            OutsidePolicy::Error,
        )
        .unwrap_err();
        assert_eq!(err, PartitionError::PointOutsideUniverse { index: 0 });
    }

    #[test]
    fn non_finite_records_rejected() {
        let pts = vec![WeightedPoint {
            pos: Point2::new(0.5, 0.5),
            weight: f64::NAN,
        }];
        assert!(
            aggregate_points("x", &pts, &source_sys(), &target_sys(), OutsidePolicy::Skip).is_err()
        );
    }

    #[test]
    fn empty_point_set_gives_zero_aggregates() {
        let agg =
            aggregate_points("x", &[], &source_sys(), &target_sys(), OutsidePolicy::Skip).unwrap();
        assert_eq!(agg.source.total(), 0.0);
        assert_eq!(agg.target.total(), 0.0);
        assert_eq!(agg.dm.nnz(), 0);
    }
}
