//! Thread-count invariance of the parallel partition paths.
//!
//! The executor contract (DESIGN.md §9) promises bit-identical results at
//! every thread count: chunk boundaries are a pure function of input
//! length and the per-chunk partials merge in chunk order. These tests
//! pin that promise for the polygon overlay, the box overlay, and point
//! aggregation — at 1, 2 and 8 threads, including empty and single-chunk
//! inputs.

use geoalign_exec::Executor;
use geoalign_geom::ndbox::grid_partition;
use geoalign_geom::{Aabb, Point2, Polygon, VoronoiDiagram};
use geoalign_partition::crosswalk::aggregate_points_with;
use geoalign_partition::{BoxUnitSystem, OutsidePolicy, Overlay, PolygonUnitSystem, WeightedPoint};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// A fine and a coarse Voronoi unit system over the unit square.
fn voronoi_world(seed: u64, fine: usize, coarse: usize) -> (PolygonUnitSystem, PolygonUnitSystem) {
    let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
    let mut state = seed;
    let mut r = move |_| lcg(&mut state);
    let f = VoronoiDiagram::jittered_grid(bounds, fine, fine, 0.45, &mut r).unwrap();
    let c = VoronoiDiagram::jittered_grid(bounds, coarse, coarse, 0.45, &mut r).unwrap();
    (
        PolygonUnitSystem::from_voronoi("fine", f).unwrap(),
        PolygonUnitSystem::from_voronoi("coarse", c).unwrap(),
    )
}

fn assert_overlays_identical(reference: &Overlay, other: &Overlay, what: &str) {
    assert_eq!(reference.len(), other.len(), "{what}: piece count differs");
    for (a, b) in reference.pieces().iter().zip(other.pieces()) {
        assert_eq!(a.source, b.source, "{what}: source order differs");
        assert_eq!(a.target, b.target, "{what}: target order differs");
        assert_eq!(
            a.measure.to_bits(),
            b.measure.to_bits(),
            "{what}: measure differs bitwise ({} vs {})",
            a.measure,
            b.measure
        );
    }
}

#[test]
fn polygon_overlay_is_thread_count_invariant() {
    let (s, t) = voronoi_world(0xfeed, 8, 3);
    let reference = Overlay::polygons_with(&s, &t, Executor::sequential()).unwrap();
    for threads in THREAD_COUNTS {
        let parallel = Overlay::polygons_with(&s, &t, Executor::new(threads)).unwrap();
        assert_overlays_identical(&reference, &parallel, &format!("polygons @{threads}"));
    }
}

#[test]
fn polygon_overlay_single_chunk_and_empty_inputs() {
    // One source unit: a single chunk regardless of thread count.
    let one = PolygonUnitSystem::new(
        "one",
        vec![Polygon::rect(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)).unwrap()],
    )
    .unwrap();
    let (_, coarse) = voronoi_world(0xbee, 8, 3);
    let reference = Overlay::polygons_with(&one, &coarse, Executor::sequential()).unwrap();
    for threads in THREAD_COUNTS {
        let parallel = Overlay::polygons_with(&one, &coarse, Executor::new(threads)).unwrap();
        assert_overlays_identical(&reference, &parallel, "single chunk");
    }
    // Disjoint systems: an empty overlay at every thread count.
    let far = PolygonUnitSystem::new(
        "far",
        vec![Polygon::rect(Point2::new(9.0, 9.0), Point2::new(10.0, 10.0)).unwrap()],
    )
    .unwrap();
    for threads in THREAD_COUNTS {
        let ov = Overlay::polygons_with(&one, &far, Executor::new(threads)).unwrap();
        assert!(ov.is_empty());
    }
}

#[test]
fn box_overlay_is_thread_count_invariant() {
    let s = BoxUnitSystem::new(
        "fine",
        grid_partition(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &[5, 4, 3]).unwrap(),
    )
    .unwrap();
    let t = BoxUnitSystem::new(
        "coarse",
        grid_partition(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &[2, 3, 2]).unwrap(),
    )
    .unwrap();
    let reference = Overlay::boxes_with(&s, &t, Executor::sequential()).unwrap();
    for threads in THREAD_COUNTS {
        let parallel = Overlay::boxes_with(&s, &t, Executor::new(threads)).unwrap();
        assert_overlays_identical(&reference, &parallel, &format!("boxes @{threads}"));
    }
    // The dimension-mismatch error also surfaces on the parallel path.
    let flat = BoxUnitSystem::new("flat", grid_partition(&[(0.0, 1.0)], &[2]).unwrap()).unwrap();
    for threads in THREAD_COUNTS {
        assert!(Overlay::boxes_with(&s, &flat, Executor::new(threads)).is_err());
    }
}

/// Two small polygon systems for point aggregation: vertical strips and
/// horizontal bands over [0,2]².
fn strips_and_bands() -> (PolygonUnitSystem, PolygonUnitSystem) {
    let strips = PolygonUnitSystem::new(
        "strips",
        (0..4)
            .map(|i| {
                Polygon::rect(
                    Point2::new(i as f64 * 0.5, 0.0),
                    Point2::new((i + 1) as f64 * 0.5, 2.0),
                )
                .unwrap()
            })
            .collect(),
    )
    .unwrap();
    let bands = PolygonUnitSystem::new(
        "bands",
        (0..3)
            .map(|i| {
                Polygon::rect(
                    Point2::new(0.0, i as f64 * 2.0 / 3.0),
                    Point2::new(2.0, (i + 1) as f64 * 2.0 / 3.0),
                )
                .unwrap()
            })
            .collect(),
    )
    .unwrap();
    (strips, bands)
}

fn assert_aggregates_identical(
    reference: &geoalign_partition::CrosswalkAggregates,
    other: &geoalign_partition::CrosswalkAggregates,
) {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(reference.source.values()), bits(other.source.values()));
    assert_eq!(bits(reference.target.values()), bits(other.target.values()));
    assert_eq!(reference.skipped, other.skipped);
    let triples = |agg: &geoalign_partition::CrosswalkAggregates| {
        agg.dm
            .matrix()
            .iter()
            .map(|(i, j, v)| (i, j, v.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(triples(reference), triples(other));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aggregate_points_is_thread_count_invariant(
        // Coordinates straddle the [0,2]² universe so some points fall
        // outside and exercise the skip path; irrational-ish weights make
        // bitwise agreement a real statement about accumulation order.
        raw in proptest::collection::vec(
            (-0.5f64..2.5, -0.5f64..2.5, 0.001f64..10.0), 0..150),
    ) {
        let (strips, bands) = strips_and_bands();
        let points: Vec<WeightedPoint> = raw
            .iter()
            .map(|&(x, y, w)| WeightedPoint { pos: Point2::new(x, y), weight: w / 3.0 })
            .collect();
        let reference = aggregate_points_with(
            "attr", &points, &strips, &bands, OutsidePolicy::Skip, Executor::sequential(),
        ).unwrap();
        for threads in THREAD_COUNTS {
            let parallel = aggregate_points_with(
                "attr", &points, &strips, &bands, OutsidePolicy::Skip, Executor::new(threads),
            ).unwrap();
            assert_aggregates_identical(&reference, &parallel);
        }
    }
}

#[test]
fn aggregate_points_edge_inputs() {
    let (strips, bands) = strips_and_bands();
    // Empty input at every thread count.
    for threads in THREAD_COUNTS {
        let agg = aggregate_points_with(
            "attr",
            &[],
            &strips,
            &bands,
            OutsidePolicy::Skip,
            Executor::new(threads),
        )
        .unwrap();
        assert_eq!(agg.source.total(), 0.0);
        assert_eq!(agg.dm.nnz(), 0);
        assert_eq!(agg.skipped, 0);
    }
    // A single point (single chunk) and the error path: the outside
    // point's index must match the sequential scan at any thread count.
    let points = vec![
        WeightedPoint::unit(Point2::new(0.25, 0.25)),
        WeightedPoint::unit(Point2::new(9.0, 9.0)),
        WeightedPoint::unit(Point2::new(8.0, 8.0)),
    ];
    for threads in THREAD_COUNTS {
        let err = aggregate_points_with(
            "attr",
            &points,
            &strips,
            &bands,
            OutsidePolicy::Error,
            Executor::new(threads),
        )
        .unwrap_err();
        assert_eq!(
            err,
            geoalign_partition::PartitionError::PointOutsideUniverse { index: 1 }
        );
    }
}
