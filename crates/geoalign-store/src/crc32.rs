//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), implemented
//! in-crate because the build environment has no crates registry. Every
//! frame the store writes — WAL records and snapshot records alike — is
//! covered by one of these checksums, which is how torn tails and bit
//! rot are detected on recovery.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (full computation, initial value 0).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC-32 check value from the standard: crc32("123456789").
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = b"geoalign-store record payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
