//! Compacted snapshots: a point-in-time image of the whole key space,
//! written atomically so a crash mid-checkpoint can never damage the
//! previous snapshot.
//!
//! Layout: `[GASN magic][u32 version][u64 seq][u64 count]` followed by
//! `count` CRC-framed entries (`[u32 len][u32 crc][key][value]`). The
//! file is written to `snapshot.tmp`, fsynced, renamed over
//! `snapshot.snap`, and the directory is fsynced — the rename is the
//! commit point. A snapshot that fails validation on load is discarded
//! wholesale (counted as a corruption repair) and the map is rebuilt
//! from the WAL alone.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc32::crc32;
use crate::error::StoreError;
use crate::wal::sync_dir;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening a snapshot file.
pub(crate) const SNAP_MAGIC: [u8; 4] = *b"GASN";
/// Snapshot header bytes: magic + version + seq + count.
const SNAP_HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// Committed snapshot file inside `dir`.
pub(crate) fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.snap")
}

fn snapshot_tmp_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.tmp")
}

/// A decoded snapshot.
#[derive(Debug)]
pub(crate) struct SnapshotData {
    /// The WAL sequence number the snapshot covers: every mutation with
    /// `seq <= seq` is already folded into `entries`.
    pub seq: u64,
    /// All live key/value pairs at `seq`, sorted by key.
    pub entries: Vec<(String, Vec<u8>)>,
}

/// Result of attempting to load the snapshot.
#[derive(Debug)]
pub(crate) struct SnapshotLoad {
    /// The snapshot, when one was present and intact.
    pub data: Option<SnapshotData>,
    /// Why a present snapshot was rejected (`None` when absent or clean).
    pub defect: Option<String>,
}

/// Writes `entries` as a snapshot covering `seq`, atomically. Entries
/// are sorted by key before writing so identical contents always produce
/// identical bytes. Returns the snapshot's size in bytes.
pub(crate) fn write_snapshot(
    dir: &Path,
    seq: u64,
    entries: &mut [(String, Vec<u8>)],
) -> Result<u64, StoreError> {
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut buf = Vec::with_capacity(
        SNAP_HEADER_BYTES
            + entries
                .iter()
                .map(|(k, v)| 16 + k.len() + v.len())
                .sum::<usize>(),
    );
    buf.extend_from_slice(&SNAP_MAGIC);
    buf.extend_from_slice(&crate::wal::FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, value) in entries.iter() {
        let mut payload = ByteWriter::with_capacity(8 + key.len() + value.len());
        payload.str(key);
        payload.bytes(value);
        let payload = payload.into_vec();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }

    let tmp = snapshot_tmp_path(dir);
    let mut file = File::create(&tmp).map_err(|e| StoreError::io_at("create", &tmp, e))?;
    file.write_all(&buf)
        .map_err(|e| StoreError::io_at("write", &tmp, e))?;
    file.sync_all()
        .map_err(|e| StoreError::io_at("fsync", &tmp, e))?;
    drop(file);
    let dst = snapshot_path(dir);
    std::fs::rename(&tmp, &dst).map_err(|e| StoreError::io_at("rename", &dst, e))?;
    sync_dir(dir)?;
    crate::obs::snapshot_bytes().record_value(buf.len() as u64);
    Ok(buf.len() as u64)
}

/// Loads and validates the snapshot, if one exists. Any defect — bad
/// magic, bad version, checksum mismatch, truncation, a lying count —
/// rejects the whole file (snapshots are all-or-nothing; a partial image
/// would silently lose keys).
pub(crate) fn load_snapshot(dir: &Path) -> Result<SnapshotLoad, StoreError> {
    let path = snapshot_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(SnapshotLoad {
                data: None,
                defect: None,
            })
        }
        Err(e) => return Err(StoreError::io_at("read", &path, e)),
    };
    match parse_snapshot(&bytes) {
        Ok(data) => Ok(SnapshotLoad {
            data: Some(data),
            defect: None,
        }),
        Err(defect) => Ok(SnapshotLoad {
            data: None,
            defect: Some(defect),
        }),
    }
}

fn parse_snapshot(bytes: &[u8]) -> Result<SnapshotData, String> {
    if bytes.len() < SNAP_HEADER_BYTES {
        return Err("snapshot shorter than its header".to_owned());
    }
    if bytes[..4] != SNAP_MAGIC {
        return Err("bad snapshot magic".to_owned());
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != crate::wal::FORMAT_VERSION {
        return Err(format!("unsupported snapshot format version {version}"));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let count = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let count = usize::try_from(count).map_err(|_| format!("entry count {count} overflows"))?;
    if count > bytes.len() {
        // Each entry takes at least one byte of frame; a count larger
        // than the file is a lie — reject before reserving memory.
        return Err(format!("entry count {count} exceeds file size"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut pos = SNAP_HEADER_BYTES;
    for i in 0..count {
        if bytes.len() - pos < 8 {
            return Err(format!("torn frame header for entry {i}"));
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let start = pos + 8;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| format!("torn payload for entry {i}"))?;
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return Err(format!("checksum mismatch for entry {i}"));
        }
        let mut r = ByteReader::new(payload);
        let decode = (|| -> Result<(String, Vec<u8>), crate::codec::CodecError> {
            let key = r.str()?.to_owned();
            let value = r.bytes()?.to_vec();
            r.expect_end()?;
            Ok((key, value))
        })();
        match decode {
            Ok(pair) => entries.push(pair),
            Err(e) => return Err(format!("undecodable entry {i}: {e}")),
        }
        pos = end;
    }
    if pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after last entry",
            bytes.len() - pos
        ));
    }
    Ok(SnapshotData { seq, entries })
}

/// Removes a rejected snapshot (and any stale tmp file) so the next
/// checkpoint starts clean.
pub(crate) fn discard_snapshot(dir: &Path) -> Result<(), StoreError> {
    for path in [snapshot_path(dir), snapshot_tmp_path(dir)] {
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io_at("remove", &path, e)),
        }
    }
    sync_dir(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("geoalign-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_and_sorted_determinism() {
        let dir = tmp_dir("roundtrip");
        let mut entries = vec![
            ("zeta".to_owned(), b"z".to_vec()),
            ("alpha".to_owned(), vec![0u8; 64]),
        ];
        let size = write_snapshot(&dir, 42, &mut entries).unwrap();
        assert!(size > 0);
        let first = std::fs::read(snapshot_path(&dir)).unwrap();

        let load = load_snapshot(&dir).unwrap();
        assert!(load.defect.is_none());
        let data = load.data.unwrap();
        assert_eq!(data.seq, 42);
        assert_eq!(data.entries.len(), 2);
        assert_eq!(data.entries[0].0, "alpha");
        assert_eq!(data.entries[1].0, "zeta");

        // Same content in a different order produces identical bytes.
        let mut reordered = vec![
            ("alpha".to_owned(), vec![0u8; 64]),
            ("zeta".to_owned(), b"z".to_vec()),
        ];
        write_snapshot(&dir, 42, &mut reordered).unwrap();
        assert_eq!(std::fs::read(snapshot_path(&dir)).unwrap(), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_snapshot_is_not_a_defect() {
        let dir = tmp_dir("absent");
        let load = load_snapshot(&dir).unwrap();
        assert!(load.data.is_none());
        assert!(load.defect.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked() {
        let dir = tmp_dir("trunc");
        let mut entries = vec![("key".to_owned(), b"value".to_vec())];
        write_snapshot(&dir, 7, &mut entries).unwrap();
        let full = std::fs::read(snapshot_path(&dir)).unwrap();
        for cut in 0..full.len() {
            std::fs::write(snapshot_path(&dir), &full[..cut]).unwrap();
            let load = load_snapshot(&dir).unwrap();
            assert!(load.data.is_none(), "cut at {cut} loaded");
            assert!(load.defect.is_some(), "cut at {cut} had no defect");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_rejected_and_discardable() {
        let dir = tmp_dir("corrupt");
        let mut entries = vec![("key".to_owned(), b"value".to_vec())];
        write_snapshot(&dir, 7, &mut entries).unwrap();
        let mut bytes = std::fs::read(snapshot_path(&dir)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(snapshot_path(&dir), &bytes).unwrap();
        let load = load_snapshot(&dir).unwrap();
        assert!(load.data.is_none());
        assert!(load.defect.unwrap().contains("checksum"));
        discard_snapshot(&dir).unwrap();
        let load = load_snapshot(&dir).unwrap();
        assert!(load.data.is_none() && load.defect.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
