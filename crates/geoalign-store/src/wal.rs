//! The append-only write-ahead segment log.
//!
//! Layout on disk: a directory holds numbered segments
//! `wal-00000001.log`, `wal-00000002.log`, … Each segment starts with an
//! 8-byte header (`GAWL` magic + format version) followed by framed
//! records:
//!
//! ```text
//! [u32 len][u32 crc32(payload)][payload: u64 seq, u8 op, key, value?]
//! ```
//!
//! Appends are committed with `fsync` (unless the store was opened with
//! `fsync: false`), so a record that was acknowledged survives a crash.
//! A crash *during* an append leaves a **torn tail**: a frame whose
//! length runs past end-of-file or whose checksum disagrees. Recovery
//! scans forward, keeps every intact record, truncates the file at the
//! last valid frame boundary, and counts the repair — exactly the
//! recovery contract the torture test exercises at every byte offset.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc32::crc32;
use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Magic bytes opening every WAL segment.
pub(crate) const WAL_MAGIC: [u8; 4] = *b"GAWL";
/// On-disk format version, bumped on any incompatible layout change.
pub(crate) const FORMAT_VERSION: u32 = 1;
/// Bytes of the segment header (magic + version).
pub(crate) const SEGMENT_HEADER_BYTES: u64 = 8;
/// Bytes of each record's frame header (length + checksum).
const FRAME_HEADER_BYTES: usize = 8;
/// Upper bound on one record's payload; a frame claiming more is corrupt,
/// not merely torn, so the cap keeps a lying length from causing a huge
/// allocation.
pub(crate) const MAX_RECORD_BYTES: u32 = 1 << 30;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Mutation {
    /// Insert or replace `key`.
    Put {
        /// Record key.
        key: String,
        /// Record value bytes.
        value: Vec<u8>,
    },
    /// Remove `key`.
    Delete {
        /// Record key.
        key: String,
    },
}

impl Mutation {
    fn op_byte(&self) -> u8 {
        match self {
            Mutation::Put { .. } => 1,
            Mutation::Delete { .. } => 2,
        }
    }
}

/// One committed WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalRecord {
    /// Monotonic commit sequence number.
    pub seq: u64,
    /// The mutation.
    pub mutation: Mutation,
}

/// Path of segment `index` inside `dir`.
pub(crate) fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.log"))
}

/// Parses a segment index back out of a file name.
pub(crate) fn parse_segment_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// All WAL segments in `dir`, sorted by index.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io_at("read_dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io_at("read_dir", dir, e))?;
        if let Some(index) = entry.file_name().to_str().and_then(parse_segment_index) {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(index, _)| index);
    Ok(segments)
}

/// Frames one record: `[len][crc][payload]`.
pub(crate) fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    payload.u64(record.seq);
    payload.u8(record.mutation.op_byte());
    match &record.mutation {
        Mutation::Put { key, value } => {
            payload.str(key);
            payload.bytes(value);
        }
        Mutation::Delete { key } => payload.str(key),
    }
    let payload = payload.into_vec();
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, StoreError> {
    let mut r = ByteReader::new(payload);
    let seq = r.u64()?;
    let op = r.u8()?;
    let mutation = match op {
        1 => {
            let key = r.str()?.to_owned();
            let value = r.bytes()?.to_vec();
            Mutation::Put { key, value }
        }
        2 => Mutation::Delete {
            key: r.str()?.to_owned(),
        },
        other => {
            return Err(StoreError::corrupt(format!("unknown WAL op byte {other}")));
        }
    };
    r.expect_end()?;
    Ok(WalRecord { seq, mutation })
}

/// Result of scanning one segment file (read-only).
#[derive(Debug)]
pub(crate) struct SegmentScan {
    /// Every intact record, in file order.
    pub records: Vec<WalRecord>,
    /// File offset just past the last intact record (or past the header
    /// when the segment holds none). Everything beyond it is damage.
    pub valid_bytes: u64,
    /// Why the scan stopped early; `None` means a clean end-of-file.
    pub defect: Option<String>,
    /// Total size of the file as found.
    pub file_bytes: u64,
}

impl SegmentScan {
    /// Whether the segment was fully intact.
    #[cfg(test)]
    pub fn is_clean(&self) -> bool {
        self.defect.is_none()
    }
}

/// Scans `path` without modifying it: validates the header, then every
/// frame's length and checksum, stopping at the first defect.
pub(crate) fn scan_segment(path: &Path) -> Result<SegmentScan, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io_at("read", path, e))?;
    let file_bytes = bytes.len() as u64;
    let mut scan = SegmentScan {
        records: Vec::new(),
        valid_bytes: 0,
        defect: None,
        file_bytes,
    };
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        scan.defect = Some("segment shorter than its header".to_owned());
        return Ok(scan);
    }
    if bytes[..4] != WAL_MAGIC {
        scan.defect = Some("bad segment magic".to_owned());
        return Ok(scan);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        scan.defect = Some(format!("unsupported WAL format version {version}"));
        return Ok(scan);
    }
    let mut pos = SEGMENT_HEADER_BYTES as usize;
    scan.valid_bytes = pos as u64;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER_BYTES {
            scan.defect = Some(format!("torn frame header at offset {pos}"));
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_RECORD_BYTES {
            scan.defect = Some(format!("implausible record length {len} at offset {pos}"));
            break;
        }
        let start = pos + FRAME_HEADER_BYTES;
        let Some(end) = start
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            scan.defect = Some(format!("torn record payload at offset {pos}"));
            break;
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            scan.defect = Some(format!("checksum mismatch at offset {pos}"));
            break;
        }
        match decode_payload(payload) {
            Ok(record) => scan.records.push(record),
            Err(e) => {
                scan.defect = Some(format!("undecodable record at offset {pos}: {e}"));
                break;
            }
        }
        pos = end;
        scan.valid_bytes = pos as u64;
    }
    Ok(scan)
}

/// Truncates `path` to its last intact frame boundary, repairing a torn
/// tail in place. A segment whose *header* is damaged is reset to a
/// fresh, empty segment (header rewritten, zero records).
pub(crate) fn repair_segment(path: &Path, scan: &SegmentScan) -> Result<(), StoreError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io_at("open for repair", path, e))?;
    if scan.valid_bytes < SEGMENT_HEADER_BYTES {
        // Header itself is torn or foreign: rewrite it from scratch.
        file.set_len(0)
            .map_err(|e| StoreError::io_at("truncate", path, e))?;
        let mut file = file;
        write_segment_header(&mut file, path)?;
        file.sync_data()
            .map_err(|e| StoreError::io_at("fsync", path, e))?;
        return Ok(());
    }
    file.set_len(scan.valid_bytes)
        .map_err(|e| StoreError::io_at("truncate", path, e))?;
    file.sync_data()
        .map_err(|e| StoreError::io_at("fsync", path, e))?;
    Ok(())
}

fn write_segment_header(file: &mut File, path: &Path) -> Result<(), StoreError> {
    let mut header = [0u8; SEGMENT_HEADER_BYTES as usize];
    header[..4].copy_from_slice(&WAL_MAGIC);
    header[4..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    file.write_all(&header)
        .map_err(|e| StoreError::io_at("write header", path, e))
}

/// The appending half of the WAL: owns the current segment's file handle
/// and rotates to a fresh segment when the size threshold is crossed.
#[derive(Debug)]
pub(crate) struct WalWriter {
    dir: PathBuf,
    file: File,
    path: PathBuf,
    index: u64,
    segment_bytes: u64,
    max_segment_bytes: u64,
    fsync: bool,
}

impl WalWriter {
    /// Opens segment `index` for appending, creating it (with a header)
    /// when absent. `existing_bytes` is the segment's current size as
    /// established by recovery.
    pub fn open(
        dir: &Path,
        index: u64,
        max_segment_bytes: u64,
        fsync: bool,
    ) -> Result<WalWriter, StoreError> {
        let path = segment_path(dir, index);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io_at("open", &path, e))?;
        let mut segment_bytes = file
            .metadata()
            .map_err(|e| StoreError::io_at("stat", &path, e))?
            .len();
        if segment_bytes == 0 {
            write_segment_header(&mut file, &path)?;
            file.sync_data()
                .map_err(|e| StoreError::io_at("fsync", &path, e))?;
            // The file's contents are durable, but its directory entry is
            // not until the directory itself is fsynced — without this a
            // crash after creation can lose the whole segment, fsynced
            // records included.
            sync_dir(dir)?;
            segment_bytes = SEGMENT_HEADER_BYTES;
        }
        Ok(WalWriter {
            dir: dir.to_owned(),
            file,
            path,
            index,
            segment_bytes,
            max_segment_bytes,
            fsync,
        })
    }

    /// Index of the segment currently being appended to.
    pub fn segment_index(&self) -> u64 {
        self.index
    }

    /// Appends one record and commits it (fsync, unless disabled). The
    /// record is durable when this returns. Rotates to a fresh segment
    /// once the current one crosses the size threshold — rotation happens
    /// *after* the append, so a record is never split across segments.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        let frame = encode_frame(record);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io_at("append", &self.path, e))?;
        if self.fsync {
            let t0 = Instant::now();
            self.file
                .sync_data()
                .map_err(|e| StoreError::io_at("fsync", &self.path, e))?;
            crate::obs::fsync_micros().record(t0.elapsed());
        }
        self.segment_bytes += frame.len() as u64;
        crate::obs::wal_appends().inc();
        if self.segment_bytes >= self.max_segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Closes the current segment and starts the next one. The open
    /// fsyncs the directory when it creates the segment file, so the
    /// rotation itself is durable.
    pub fn rotate(&mut self) -> Result<(), StoreError> {
        let next = WalWriter::open(
            &self.dir,
            self.index + 1,
            self.max_segment_bytes,
            self.fsync,
        )?;
        *self = next;
        Ok(())
    }
}

/// Fsyncs a directory so renames and newly created files inside it are
/// themselves durable (required on Linux for crash safety of the
/// snapshot rename and segment rotation).
pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    let handle = File::open(dir).map_err(|e| StoreError::io_at("open dir", dir, e))?;
    handle
        .sync_all()
        .map_err(|e| StoreError::io_at("fsync dir", dir, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("geoalign-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(seq: u64, key: &str, value: &[u8]) -> WalRecord {
        WalRecord {
            seq,
            mutation: Mutation::Put {
                key: key.to_owned(),
                value: value.to_vec(),
            },
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::open(&dir, 1, 1 << 20, true).unwrap();
        let records = vec![
            put(1, "a", b"alpha"),
            WalRecord {
                seq: 2,
                mutation: Mutation::Delete { key: "a".into() },
            },
            put(3, "b", &[0u8; 100]),
        ];
        for r in &records {
            w.append(r).unwrap();
        }
        let scan = scan_segment(&segment_path(&dir, 1)).unwrap();
        assert!(scan.is_clean(), "{:?}", scan.defect);
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_bytes, scan.file_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_by_size() {
        let dir = tmp_dir("rotate");
        // Tiny threshold: every append rotates.
        let mut w = WalWriter::open(&dir, 1, 64, false).unwrap();
        for seq in 1..=3 {
            w.append(&put(seq, "k", b"0123456789abcdef0123456789abcdef"))
                .unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "{segments:?}");
        assert_eq!(w.segment_index(), segments.last().unwrap().0);
        // Each record landed whole in its own segment.
        let total: usize = segments
            .iter()
            .map(|(_, p)| scan_segment(p).unwrap().records.len())
            .sum();
        assert_eq!(total, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_repaired() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(&dir, 1, 1 << 20, false).unwrap();
        w.append(&put(1, "good", b"kept")).unwrap();
        w.append(&put(2, "bad", b"lost to the crash")).unwrap();
        drop(w);
        let path = segment_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        let scan = scan_segment(&path).unwrap();
        let keep_first = scan.valid_bytes; // end of record 2
                                           // Chop 3 bytes off the final record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.is_clean());
        assert_eq!(scan.records.len(), 1);
        assert!(scan.valid_bytes < keep_first);
        repair_segment(&path, &scan).unwrap();
        let again = scan_segment(&path).unwrap();
        assert!(again.is_clean());
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.records[0], put(1, "good", b"kept"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let dir = tmp_dir("bitflip");
        let mut w = WalWriter::open(&dir, 1, 1 << 20, false).unwrap();
        w.append(&put(1, "k", b"payload")).unwrap();
        drop(w);
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.defect.as_deref().unwrap_or("").contains("checksum"));
        assert!(scan.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(parse_segment_index("wal-00000042.log"), Some(42));
        assert_eq!(parse_segment_index("wal-0042.log"), None);
        assert_eq!(parse_segment_index("snapshot.snap"), None);
        assert_eq!(parse_segment_index("wal-abcdefgh.log"), None);
        let p = segment_path(Path::new("/x"), 7);
        assert_eq!(p.file_name().unwrap().to_str().unwrap(), "wal-00000007.log");
    }
}
