//! Metric handles for the persistence layer, registered once in the
//! process-global [`Registry`](geoalign_obs::Registry) under the
//! workspace convention `geoalign_<crate>_<name>_<unit>` (DESIGN.md §8).
//!
//! The handles are `pub` (unlike the other crates' `pub(crate)` obs
//! modules) because the durable cache tier lives in `geoalign-core`: a
//! read-through that revives a prepared crosswalk from disk is a *store*
//! warm hit even though core's code path records it.

use geoalign_obs::{Counter, Histogram, Registry};
use std::sync::{Arc, OnceLock};

macro_rules! global_histogram {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Cached global handle for the metric named in the body.
        pub fn $fn_name() -> &'static Arc<Histogram> {
            static H: OnceLock<Arc<Histogram>> = OnceLock::new();
            H.get_or_init(|| Registry::global().histogram($metric, $help))
        }
    };
}

macro_rules! global_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Cached global handle for the metric named in the body.
        pub fn $fn_name() -> &'static Counter {
            static C: OnceLock<Counter> = OnceLock::new();
            C.get_or_init(|| Registry::global().counter($metric, $help))
        }
    };
}

global_counter!(
    wal_appends,
    "geoalign_store_wal_appends_total",
    "Records appended to the write-ahead log"
);
global_counter!(
    checkpoints,
    "geoalign_store_checkpoints_total",
    "Snapshots checkpointed (compacted + WAL truncated)"
);
global_counter!(
    corruption_repairs,
    "geoalign_store_corruption_repairs_total",
    "Corruption events repaired on recovery (torn tails truncated, bad records dropped)"
);
global_counter!(
    warm_hits,
    "geoalign_store_warm_hits_total",
    "Cold cache lookups served from the durable store instead of recomputing"
);
global_histogram!(
    fsync_micros,
    "geoalign_store_wal_fsync_micros",
    "Wall time of the fsync that commits each WAL append"
);
global_histogram!(
    replay_micros,
    "geoalign_store_replay_micros",
    "Wall time of snapshot load + WAL replay on Store::open"
);
global_histogram!(
    snapshot_bytes,
    "geoalign_store_snapshot_bytes",
    "Size of each checkpointed snapshot file in bytes"
);
