//! Error type for the persistence layer.

use crate::codec::CodecError;
use std::fmt;
use std::path::Path;

/// Errors raised by the store, WAL, and snapshot machinery.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the path and operation that
    /// failed.
    Io {
        /// What the store was doing (e.g. `"append wal-00000001.log"`).
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// On-disk bytes that fail validation beyond what recovery repairs —
    /// e.g. a snapshot with a bad magic number.
    Corrupt {
        /// What was found where.
        context: String,
    },
    /// A record payload that decoded incorrectly.
    Codec(CodecError),
}

impl StoreError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn io_at(op: &str, path: &Path, source: std::io::Error) -> Self {
        StoreError::Io {
            context: format!("{op} {}", path.display()),
            source,
        }
    }

    pub(crate) fn corrupt(context: impl Into<String>) -> Self {
        StoreError::Corrupt {
            context: context.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "I/O error: {context}: {source}"),
            StoreError::Corrupt { context } => write!(f, "corrupt store: {context}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Codec(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}
