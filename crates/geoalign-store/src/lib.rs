//! # geoalign-store
//!
//! Crash-safe persistence for GeoAlign serving state, built on `std`
//! alone: a string-keyed map of opaque byte values, durably backed by an
//! append-only write-ahead log and periodic compacted snapshots.
//!
//! The crate is deliberately domain-blind — it stores `Vec<u8>` and
//! knows nothing about unit systems or crosswalks. The domain codecs
//! live in `geoalign-core::persist`, which keeps the dependency arrow
//! pointing the right way (core depends on store, never the reverse).
//!
//! ## Durability contract
//!
//! * [`Store::put`] / [`Store::delete`] return only after the mutation
//!   is framed, checksummed, appended to the current WAL segment, and
//!   fsynced (unless opened with [`StoreOptions::fsync`] `= false`).
//! * [`Store::checkpoint`] writes a sorted snapshot to a temp file,
//!   fsyncs it, atomically renames it into place, fsyncs the directory,
//!   rotates to a fresh WAL segment, and deletes the segments the
//!   snapshot made redundant. The rename is the commit point.
//! * [`Store::open`] replays: snapshot first (a damaged snapshot is
//!   discarded wholesale and counted as a repair), then every WAL record
//!   with a sequence number past the snapshot's. A torn tail — the
//!   half-written record a crash leaves behind — is detected by length
//!   framing + CRC-32 and truncated away; the store recovers to the last
//!   *committed* write, never to a partial one.
//!
//! ## Concurrency contract
//!
//! Reads take a shared lock on the in-memory map and never touch disk.
//! Writes serialize on an internal writer mutex; a mutation becomes
//! visible to readers only after it is durable. `&Store` is `Sync` —
//! share it behind an `Arc` freely.
//!
//! On-disk format details are documented in `DESIGN.md` §11.

#![warn(missing_docs)]

pub mod codec;
mod crc32;
mod error;
pub mod obs;
mod snapshot;
mod store;
mod wal;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use crc32::crc32;
pub use error::StoreError;
pub use store::{
    first_segment_path, is_store_dir, CheckpointReport, RecoveryReport, SegmentVerify, Store,
    StoreOptions, VerifyReport, WAL_HEADER_BYTES,
};
