//! The durable key/value store: an in-memory map backed by the WAL and
//! periodic snapshots.
//!
//! Concurrency contract: reads (`get`, `iter_prefix`, `len`) take only
//! the map's read lock and never touch the disk. Writes serialize on the
//! writer mutex and apply the map update *before* releasing it (WAL
//! append + fsync, then map), so a mutation is visible to readers only
//! after it is durable. `checkpoint` holds the writer mutex for its
//! whole duration, which guarantees the map it snapshots contains every
//! mutation up to the sequence number it records — and keeps that
//! sequence consistent with the segment rotation that follows.

use crate::error::StoreError;
use crate::snapshot::{discard_snapshot, load_snapshot, write_snapshot};
use crate::wal::{
    list_segments, repair_segment, scan_segment, segment_path, Mutation, WalRecord, WalWriter,
    SEGMENT_HEADER_BYTES,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Store::open_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Rotate to a fresh WAL segment once the current one reaches this
    /// many bytes.
    pub segment_max_bytes: u64,
    /// Fsync every committed append. Disable only in tests and benches
    /// where crash durability is not under test.
    pub fsync: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_max_bytes: 64 << 20,
            fsync: true,
        }
    }
}

/// What recovery found and repaired while opening the store.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence number the loaded snapshot covered (0 when none).
    pub snapshot_seq: u64,
    /// Entries restored from the snapshot.
    pub snapshot_records: usize,
    /// Why a present snapshot was discarded, if it was.
    pub snapshot_defect: Option<String>,
    /// WAL segments scanned.
    pub wal_segments: usize,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Corruption events repaired: torn tails truncated, damaged
    /// snapshots discarded.
    pub repairs: usize,
    /// Human-readable description of the torn tail, when one was found.
    pub torn_tail: Option<String>,
    /// Wall time of snapshot load + replay.
    pub replay: Duration,
    /// Highest committed sequence number after recovery.
    pub last_seq: u64,
}

/// Outcome of one [`Store::checkpoint`].
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Sequence number the new snapshot covers.
    pub seq: u64,
    /// Live entries written into the snapshot.
    pub records: usize,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: u64,
    /// Old WAL segments deleted after the snapshot committed.
    pub wal_segments_removed: usize,
}

/// Read-only health of one WAL segment, for [`Store::verify`].
#[derive(Debug, Clone)]
pub struct SegmentVerify {
    /// Segment index.
    pub index: u64,
    /// Intact records in the segment.
    pub records: usize,
    /// File size in bytes.
    pub bytes: u64,
    /// First defect found, if any.
    pub defect: Option<String>,
}

/// Read-only integrity report over a store directory, produced without
/// opening (and therefore without repairing) the store.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Whether a snapshot file exists.
    pub snapshot_present: bool,
    /// Why the snapshot failed validation, if it did.
    pub snapshot_defect: Option<String>,
    /// Entries in the snapshot.
    pub snapshot_records: usize,
    /// Sequence number the snapshot covers.
    pub snapshot_seq: u64,
    /// Per-segment health, in index order.
    pub segments: Vec<SegmentVerify>,
    /// Intact WAL records across all segments.
    pub wal_records: usize,
    /// Highest sequence number seen anywhere.
    pub last_seq: u64,
}

impl VerifyReport {
    /// Whether every file in the directory is fully intact.
    pub fn is_clean(&self) -> bool {
        self.snapshot_defect.is_none() && self.segments.iter().all(|s| s.defect.is_none())
    }
}

/// A crash-safe, string-keyed store of opaque byte values.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    map: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    writer: Mutex<WalWriter>,
    seq: AtomicU64,
    recovery: RecoveryReport,
}

impl Store {
    /// Opens (or creates) the store at `dir` with default options.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(dir, StoreOptions::default())
    }

    /// Opens (or creates) the store at `dir`. Recovery runs here: the
    /// snapshot is loaded (or discarded if damaged), every WAL segment is
    /// scanned, and a torn tail on the **last** segment is truncated in
    /// place — that is the only damage a crash can produce, because
    /// rotation only happens after a completed append. A defect in any
    /// earlier segment is bit rot of durably committed history; repairing
    /// it automatically would silently discard the intact records behind
    /// it, so the open fails instead and leaves every file untouched for
    /// `geoalign store verify` and explicit operator action.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_owned();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io_at("create_dir", &dir, e))?;
        let t0 = Instant::now();
        let mut report = RecoveryReport::default();
        let mut map: HashMap<String, Arc<Vec<u8>>> = HashMap::new();

        let snap = load_snapshot(&dir)?;
        if let Some(defect) = snap.defect {
            report.snapshot_defect = Some(defect);
            report.repairs += 1;
            crate::obs::corruption_repairs().inc();
            discard_snapshot(&dir)?;
        }
        if let Some(data) = snap.data {
            report.snapshot_seq = data.seq;
            report.snapshot_records = data.entries.len();
            report.last_seq = data.seq;
            for (key, value) in data.entries {
                map.insert(key, Arc::new(value));
            }
        }

        let segments = list_segments(&dir)?;
        report.wal_segments = segments.len();
        let mut writer_index = 1;
        for (pos, (index, path)) in segments.iter().enumerate() {
            writer_index = *index;
            let scan = scan_segment(path)?;
            if let Some(defect) = &scan.defect {
                if pos + 1 != segments.len() {
                    // A crash can only tear the tail of the last segment
                    // (rotation happens after a completed append), so a
                    // defect here is bit rot of committed history. Auto-
                    // truncating would discard the intact records behind
                    // it; fail open and leave the files as found.
                    return Err(StoreError::corrupt(format!(
                        "{}: {defect} — segment {} is not the last segment, so this is damage \
                         to durably committed history, not a torn write; refusing to repair \
                         automatically (run `geoalign store verify`, then restore from backup \
                         or remove the damaged files explicitly)",
                        path.display(),
                        index
                    )));
                }
                report.torn_tail = Some(format!("{}: {defect}", path.display()));
                report.repairs += 1;
                crate::obs::corruption_repairs().inc();
                repair_segment(path, &scan)?;
            }
            for record in scan.records {
                if record.seq <= report.snapshot_seq {
                    continue;
                }
                report.last_seq = report.last_seq.max(record.seq);
                report.wal_records_replayed += 1;
                match record.mutation {
                    Mutation::Put { key, value } => {
                        map.insert(key, Arc::new(value));
                    }
                    Mutation::Delete { key } => {
                        map.remove(&key);
                    }
                }
            }
        }

        let writer = WalWriter::open(&dir, writer_index, opts.segment_max_bytes, opts.fsync)?;
        report.replay = t0.elapsed();
        crate::obs::replay_micros().record(report.replay);

        Ok(Store {
            dir,
            opts,
            map: RwLock::new(map),
            seq: AtomicU64::new(report.last_seq),
            recovery: report,
            writer: Mutex::new(writer),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Highest committed sequence number.
    pub fn last_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Looks up `key`. Never touches the disk.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        self.map
            .read()
            .expect("store map lock poisoned")
            .get(key)
            .cloned()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.map
            .read()
            .expect("store map lock poisoned")
            .contains_key(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.read().expect("store map lock poisoned").len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys starting with `prefix`, with their values, sorted by key.
    pub fn iter_prefix(&self, prefix: &str) -> Vec<(String, Arc<Vec<u8>>)> {
        let map = self.map.read().expect("store map lock poisoned");
        let mut out: Vec<(String, Arc<Vec<u8>>)> = map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Durably inserts or replaces `key`. Returns once the record is
    /// committed to the WAL (fsynced, unless the store was opened with
    /// `fsync: false`).
    pub fn put(&self, key: &str, value: Vec<u8>) -> Result<(), StoreError> {
        self.commit(Mutation::Put {
            key: key.to_owned(),
            value,
        })
    }

    /// Durably removes `key` (a no-op record is still logged when the key
    /// is absent; recovery tolerates it).
    pub fn delete(&self, key: &str) -> Result<(), StoreError> {
        self.commit(Mutation::Delete {
            key: key.to_owned(),
        })
    }

    /// Appends and commits one mutation, then applies it to the map —
    /// all while holding the writer mutex. `checkpoint` holds the same
    /// mutex, so it can never observe sequence `n` without the map
    /// containing mutation `n`; applying the map update after releasing
    /// the mutex would let a checkpoint snapshot an older map at seq `n`
    /// and then delete the WAL segment holding the acknowledged record.
    fn commit(&self, mutation: Mutation) -> Result<(), StoreError> {
        let mut writer = self.writer.lock().expect("store writer lock poisoned");
        let seq = self.seq.load(Ordering::Acquire) + 1;
        let record = WalRecord { seq, mutation };
        writer.append(&record)?;
        match record.mutation {
            Mutation::Put { key, value } => {
                self.map
                    .write()
                    .expect("store map lock poisoned")
                    .insert(key, Arc::new(value));
            }
            Mutation::Delete { key } => {
                self.map
                    .write()
                    .expect("store map lock poisoned")
                    .remove(&key);
            }
        }
        self.seq.store(seq, Ordering::Release);
        Ok(())
    }

    /// Compacts the store: writes a snapshot of the live map at the
    /// current sequence number, rotates to a fresh WAL segment, and
    /// deletes the segments the snapshot made redundant.
    pub fn checkpoint(&self) -> Result<CheckpointReport, StoreError> {
        let mut writer = self.writer.lock().expect("store writer lock poisoned");
        let seq = self.seq.load(Ordering::Acquire);
        let mut entries: Vec<(String, Vec<u8>)> = {
            let map = self.map.read().expect("store map lock poisoned");
            map.iter()
                .map(|(k, v)| (k.clone(), v.as_ref().clone()))
                .collect()
        };
        let records = entries.len();
        let snapshot_bytes = write_snapshot(&self.dir, seq, &mut entries)?;
        writer.rotate()?;
        let keep = writer.segment_index();
        let mut removed = 0;
        for (index, path) in list_segments(&self.dir)? {
            if index < keep {
                std::fs::remove_file(&path).map_err(|e| StoreError::io_at("remove", &path, e))?;
                removed += 1;
            }
        }
        crate::obs::checkpoints().inc();
        Ok(CheckpointReport {
            seq,
            records,
            snapshot_bytes,
            wal_segments_removed: removed,
        })
    }

    /// Read-only integrity check of a store directory, without opening
    /// or repairing anything. Safe to run against a directory another
    /// process has open (results are advisory in that case).
    pub fn verify(dir: impl AsRef<Path>) -> Result<VerifyReport, StoreError> {
        let dir = dir.as_ref();
        let mut report = VerifyReport::default();
        let snap = load_snapshot(dir)?;
        report.snapshot_present = snap.data.is_some() || snap.defect.is_some();
        report.snapshot_defect = snap.defect;
        if let Some(data) = snap.data {
            report.snapshot_records = data.entries.len();
            report.snapshot_seq = data.seq;
            report.last_seq = data.seq;
        }
        for (index, path) in list_segments(dir)? {
            let scan = scan_segment(&path)?;
            report.wal_records += scan.records.len();
            for record in &scan.records {
                report.last_seq = report.last_seq.max(record.seq);
            }
            report.segments.push(SegmentVerify {
                index,
                records: scan.records.len(),
                bytes: scan.file_bytes,
                defect: scan.defect,
            });
        }
        Ok(report)
    }

    /// Initialises an empty store directory (creates the first WAL
    /// segment) and returns immediately. Fails if the directory already
    /// holds store files.
    pub fn init(dir: impl AsRef<Path>) -> Result<(), StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io_at("create_dir", dir, e))?;
        if !list_segments(dir)?.is_empty() || load_snapshot(dir)?.data.is_some() {
            return Err(StoreError::io(
                format!("init {}", dir.display()),
                std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "directory already holds store files",
                ),
            ));
        }
        // The open fsyncs the directory after creating the segment file.
        let _ = WalWriter::open(dir, 1, StoreOptions::default().segment_max_bytes, true)?;
        Ok(())
    }

    /// The options this store was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.opts
    }
}

/// True when `dir` looks like a store directory (has a snapshot or at
/// least one WAL segment).
pub fn is_store_dir(dir: impl AsRef<Path>) -> Result<bool, StoreError> {
    let dir = dir.as_ref();
    if !dir.is_dir() {
        return Ok(false);
    }
    Ok(load_snapshot(dir)?.data.is_some()
        || load_snapshot(dir)?.defect.is_some()
        || !list_segments(dir)?.is_empty())
}

// Used by tests and the CLI to point at the first segment for damage
// injection and inspection.
#[doc(hidden)]
pub fn first_segment_path(dir: &Path) -> PathBuf {
    segment_path(dir, 1)
}

#[doc(hidden)]
pub const WAL_HEADER_BYTES: u64 = SEGMENT_HEADER_BYTES;

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("geoalign-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fast() -> StoreOptions {
        StoreOptions {
            segment_max_bytes: 64 << 20,
            fsync: false,
        }
    }

    #[test]
    fn put_get_delete_survive_reopen() {
        let dir = tmp_dir("basic");
        {
            let store = Store::open_with(&dir, fast()).unwrap();
            store.put("a", b"1".to_vec()).unwrap();
            store.put("b", b"2".to_vec()).unwrap();
            store.put("a", b"3".to_vec()).unwrap();
            store.delete("b").unwrap();
            assert_eq!(store.get("a").unwrap().as_ref(), b"3");
            assert!(store.get("b").is_none());
            assert_eq!(store.len(), 1);
        }
        let store = Store::open_with(&dir, fast()).unwrap();
        assert_eq!(store.get("a").unwrap().as_ref(), b"3");
        assert!(store.get("b").is_none());
        assert_eq!(store.recovery().wal_records_replayed, 4);
        assert_eq!(store.recovery().repairs, 0);
        assert_eq!(store.last_seq(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_replay_resumes_after_it() {
        let dir = tmp_dir("checkpoint");
        {
            let store = Store::open_with(&dir, fast()).unwrap();
            for i in 0..10 {
                store.put(&format!("k{i}"), vec![i as u8; 8]).unwrap();
            }
            let report = store.checkpoint().unwrap();
            assert_eq!(report.seq, 10);
            assert_eq!(report.records, 10);
            assert!(report.snapshot_bytes > 0);
            assert_eq!(report.wal_segments_removed, 1);
            // Mutations after the checkpoint land in the fresh segment.
            store.put("post", b"wal".to_vec()).unwrap();
            store.delete("k0").unwrap();
        }
        let store = Store::open_with(&dir, fast()).unwrap();
        assert_eq!(store.recovery().snapshot_records, 10);
        assert_eq!(store.recovery().snapshot_seq, 10);
        assert_eq!(store.recovery().wal_records_replayed, 2);
        assert_eq!(store.len(), 10); // 10 - k0 + post
        assert!(store.get("post").is_some());
        assert!(store.get("k0").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn iter_prefix_is_sorted_and_filtered() {
        let dir = tmp_dir("prefix");
        let store = Store::open_with(&dir, fast()).unwrap();
        store.put("sys/beta", b"b".to_vec()).unwrap();
        store.put("sys/alpha", b"a".to_vec()).unwrap();
        store.put("ref/x", b"x".to_vec()).unwrap();
        let got = store.iter_prefix("sys/");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "sys/alpha");
        assert_eq!(got[1].0, "sys/beta");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_commit() {
        let dir = tmp_dir("torn");
        {
            let store = Store::open_with(&dir, fast()).unwrap();
            store.put("committed", b"yes".to_vec()).unwrap();
            store.put("torn", b"partially written".to_vec()).unwrap();
        }
        let seg = first_segment_path(&dir);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let store = Store::open_with(&dir, fast()).unwrap();
        assert_eq!(store.get("committed").unwrap().as_ref(), b"yes");
        assert!(store.get("torn").is_none());
        assert_eq!(store.recovery().repairs, 1);
        assert!(store.recovery().torn_tail.is_some());
        assert_eq!(store.last_seq(), 1);
        // The repaired store accepts new writes and they stick.
        store.put("after", b"repair".to_vec()).unwrap();
        drop(store);
        let store = Store::open_with(&dir, fast()).unwrap();
        assert_eq!(store.recovery().repairs, 0);
        assert!(store.get("after").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_wal() {
        let dir = tmp_dir("snapfall");
        {
            let store = Store::open_with(&dir, fast()).unwrap();
            store.put("k", b"v1".to_vec()).unwrap();
            store.checkpoint().unwrap();
            store.put("k", b"v2".to_vec()).unwrap();
        }
        // Damage the snapshot: the store must discard it and rebuild
        // from the WAL. The pre-checkpoint segment was deleted, so only
        // the post-checkpoint record exists — the final value survives.
        let snap = crate::snapshot::snapshot_path(&dir);
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[4] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();
        let store = Store::open_with(&dir, fast()).unwrap();
        assert!(store.recovery().snapshot_defect.is_some());
        assert!(store.recovery().repairs >= 1);
        assert_eq!(store.get("k").unwrap().as_ref(), b"v2");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_reports_without_repairing() {
        let dir = tmp_dir("verify");
        {
            let store = Store::open_with(&dir, fast()).unwrap();
            store.put("a", b"1".to_vec()).unwrap();
            store.put("b", b"2".to_vec()).unwrap();
        }
        let clean = Store::verify(&dir).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.wal_records, 2);
        assert_eq!(clean.last_seq, 2);

        let seg = first_segment_path(&dir);
        let bytes = std::fs::read(&seg).unwrap();
        let cut = bytes.len() - 3;
        std::fs::write(&seg, &bytes[..cut]).unwrap();
        let dirty = Store::verify(&dir).unwrap();
        assert!(!dirty.is_clean());
        assert_eq!(dirty.wal_records, 1);
        // verify did not repair: the file still has the torn bytes.
        assert_eq!(std::fs::read(&seg).unwrap().len(), cut);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn init_refuses_nonempty_and_detection_works() {
        let dir = tmp_dir("init");
        assert!(!is_store_dir(&dir).unwrap());
        Store::init(&dir).unwrap();
        assert!(is_store_dir(&dir).unwrap());
        assert!(Store::init(&dir).is_err());
        let store = Store::open_with(&dir, fast()).unwrap();
        assert!(store.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_rotation_replays_across_segments() {
        let dir = tmp_dir("multiseg");
        {
            let store = Store::open_with(
                &dir,
                StoreOptions {
                    segment_max_bytes: 96,
                    fsync: false,
                },
            )
            .unwrap();
            for i in 0..20 {
                store.put(&format!("key-{i:02}"), vec![0xab; 32]).unwrap();
            }
        }
        assert!(list_segments(&dir).unwrap().len() > 1);
        let store = Store::open_with(
            &dir,
            StoreOptions {
                segment_max_bytes: 96,
                fsync: false,
            },
        )
        .unwrap();
        assert_eq!(store.len(), 20);
        assert_eq!(store.recovery().wal_records_replayed, 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_in_non_final_segment_fails_open_and_destroys_nothing() {
        // Bit rot mid-way through an *earlier* segment is not a torn
        // write: recovery must refuse to repair rather than discard the
        // intact, durably committed segments behind the defect.
        let opts = StoreOptions {
            segment_max_bytes: 96,
            fsync: false,
        };
        let dir = tmp_dir("midrot");
        {
            let store = Store::open_with(&dir, opts.clone()).unwrap();
            for i in 0..20 {
                store.put(&format!("key-{i:02}"), vec![0xab; 32]).unwrap();
            }
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2, "{segments:?}");
        // Flip one payload bit in the first (non-final) segment.
        let first = &segments[0].1;
        let pristine_first = std::fs::read(first).unwrap();
        let mut bytes = pristine_first.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(first, &bytes).unwrap();
        let before: Vec<Vec<u8>> = segments
            .iter()
            .map(|(_, p)| std::fs::read(p).unwrap())
            .collect();

        let err = Store::open_with(&dir, opts.clone()).unwrap_err();
        assert!(
            err.to_string().contains("not the last segment"),
            "unexpected error: {err}"
        );
        // Every segment is still on disk, byte for byte as found.
        let after = list_segments(&dir).unwrap();
        assert_eq!(after.len(), segments.len());
        for ((_, path), original) in after.iter().zip(&before) {
            assert_eq!(&std::fs::read(path).unwrap(), original, "{path:?}");
        }

        // The same defect at the tail of the *last* segment is repaired.
        let (_, last_seg) = segments.last().unwrap();
        let mut bytes = std::fs::read(last_seg).unwrap();
        let end = bytes.len() - 1;
        bytes[end] ^= 0x01;
        std::fs::write(last_seg, &bytes).unwrap();
        std::fs::write(first, &pristine_first).unwrap(); // undo the early damage
        let store = Store::open_with(&dir, opts).unwrap();
        assert_eq!(store.recovery().repairs, 1);
        assert!(store.recovery().torn_tail.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
