//! Length-prefixed little-endian binary primitives — the byte-level
//! vocabulary every on-disk payload in this workspace is written in.
//!
//! The writer is infallible (it only grows a `Vec<u8>`); the reader
//! returns [`CodecError`] on any truncation or malformed length so a
//! corrupt payload can never panic the decoder. Floats are stored as
//! exact IEEE-754 bit patterns, which is what makes a decoded
//! `PreparedCrosswalk` byte-identical to the one that was encoded.

use std::fmt;

/// A malformed or truncated binary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What the decoder was reading when the payload ran out or lied.
    pub detail: String,
}

impl CodecError {
    /// A codec error with the given detail message. Public so domain
    /// codecs layered on [`ByteReader`] can raise their own.
    pub fn new(detail: impl Into<String>) -> Self {
        CodecError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed payload: {}", self.detail)
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer pre-sized for roughly `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `u32` length prefix followed by the string's UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        debug_assert!(b.len() <= u32::MAX as usize);
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u64` count followed by each value's bit pattern.
    pub fn f64_slice(&mut self, values: &[f64]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.f64(v);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The finished payload.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a payload slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                CodecError::new(format!(
                    "{what}: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` that must fit a `usize` (a count or dimension).
    pub fn len_u64(&mut self, what: &str) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::new(format!("{what}: {v} overflows usize")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        self.take(n, "length-prefixed bytes")
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| CodecError::new(format!("string is not UTF-8: {e}")))
    }

    /// Reads a `u64`-count-prefixed `f64` vector.
    pub fn f64_vec(&mut self, what: &str) -> Result<Vec<f64>, CodecError> {
        let n = self.len_u64(what)?;
        // Guard against a lying count before allocating.
        if n.checked_mul(8)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(CodecError::new(format!(
                "{what}: count {n} exceeds remaining payload"
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the payload is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the payload is fully consumed — catches payloads with
    /// trailing garbage that a partial decode would silently accept.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::new(format!(
                "{} unexpected trailing bytes",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("unit système");
        w.bytes(&[1, 2, 3]);
        w.f64_slice(&[1.5, -2.5]);
        let buf = w.into_vec();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "unit système");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.f64_vec("v").unwrap(), vec![1.5, -2.5]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.str("hello");
        let buf = w.into_vec();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(r.str().is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn lying_length_prefixes_are_rejected() {
        // Claims 1000 bytes follow, provides 2.
        let mut w = ByteWriter::new();
        w.u32(1000);
        w.u8(1);
        w.u8(2);
        let buf = w.into_vec();
        assert!(ByteReader::new(&buf).bytes().is_err());

        // f64 vector claiming more entries than the payload can hold.
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        let buf = w.into_vec();
        assert!(ByteReader::new(&buf).f64_vec("v").is_err());
    }

    #[test]
    fn trailing_garbage_is_caught() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        r.u8().unwrap();
        assert!(r.expect_end().is_err());
        r.u8().unwrap();
        r.expect_end().unwrap();
    }
}
