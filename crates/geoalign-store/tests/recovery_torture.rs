//! Kill-the-writer torture: a WAL truncated at **every** byte offset —
//! simulating a crash mid-write at each possible point — must recover to
//! the last fully-committed record with no panic, and the repair must be
//! durable (a second open finds a clean store).

use geoalign_store::{Store, StoreOptions, WAL_HEADER_BYTES};
use std::path::PathBuf;

fn opts() -> StoreOptions {
    StoreOptions {
        segment_max_bytes: 64 << 20,
        fsync: false,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("geoalign-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_segment(dir: &PathBuf) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "expected a single WAL segment");
    segments.remove(0)
}

fn key(i: usize) -> String {
    format!("k{i:02}")
}

fn value(i: usize) -> Vec<u8> {
    vec![i as u8; 5 + i]
}

#[test]
fn truncation_at_every_byte_offset_recovers_to_last_commit() {
    let base = tmp_dir("every-offset");
    const N: usize = 6;
    {
        let store = Store::open_with(&base, opts()).unwrap();
        for i in 0..N {
            store.put(&key(i), value(i)).unwrap();
        }
    }
    let segment = wal_segment(&base);
    let segment_name = segment.file_name().unwrap().to_owned();
    let pristine = std::fs::read(&segment).unwrap();

    // Walk the frames to find where each committed record ends: a cut at
    // or past `ends[i]` preserves records 0..=i.
    let mut ends = Vec::new();
    let mut pos = WAL_HEADER_BYTES as usize;
    while pos < pristine.len() {
        let len = u32::from_le_bytes(pristine[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        ends.push(pos);
    }
    assert_eq!(ends.len(), N, "one frame per put");
    assert_eq!(pos, pristine.len(), "no trailing bytes in a clean WAL");

    let scratch = tmp_dir("every-offset-scratch");
    for cut in 0..=pristine.len() {
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join(&segment_name), &pristine[..cut]).unwrap();

        let survived = ends.iter().filter(|&&e| e <= cut).count();
        let torn =
            cut != pristine.len() && !ends.contains(&cut) && cut != WAL_HEADER_BYTES as usize;
        {
            let store = Store::open_with(&scratch, opts()).unwrap();
            assert_eq!(store.len(), survived, "cut at byte {cut}");
            for i in 0..survived {
                assert_eq!(
                    store.get(&key(i)).as_deref(),
                    Some(&value(i)),
                    "cut at byte {cut}: record {i} must survive"
                );
            }
            for i in survived..N {
                assert!(
                    store.get(&key(i)).is_none(),
                    "cut at byte {cut}: record {i} was torn and must be gone"
                );
            }
            if torn {
                assert!(
                    store.recovery().repairs >= 1,
                    "cut at byte {cut} tears a frame; recovery must report the repair"
                );
            }
            assert_eq!(store.last_seq(), survived as u64, "cut at byte {cut}");
        }
        // The repair is durable: a second open finds a clean store with
        // the same contents and nothing left to fix.
        let store = Store::open_with(&scratch, opts()).unwrap();
        assert_eq!(store.len(), survived, "reopen after cut at byte {cut}");
        assert_eq!(
            store.recovery().repairs,
            0,
            "cut at byte {cut}: the first open must have repaired durably"
        );
        assert!(store.recovery().torn_tail.is_none());

        // And the store still accepts writes after the repair.
        store.put("post-repair", vec![0xAB]).unwrap();
        assert!(store.get("post-repair").is_some());
    }

    std::fs::remove_dir_all(&base).unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn flipped_bits_in_the_tail_record_are_detected_at_every_byte() {
    // A crash can also leave a *written but garbled* tail (partial sector
    // writes). Flip one bit in each byte of the final record's frame: the
    // CRC must catch every one, recovery keeping the earlier records.
    let base = tmp_dir("bitflip");
    const N: usize = 3;
    {
        let store = Store::open_with(&base, opts()).unwrap();
        for i in 0..N {
            store.put(&key(i), value(i)).unwrap();
        }
    }
    let segment = wal_segment(&base);
    let segment_name = segment.file_name().unwrap().to_owned();
    let pristine = std::fs::read(&segment).unwrap();
    let mut ends = Vec::new();
    let mut pos = WAL_HEADER_BYTES as usize;
    while pos < pristine.len() {
        let len = u32::from_le_bytes(pristine[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        ends.push(pos);
    }
    let last_start = ends[N - 2];

    let scratch = tmp_dir("bitflip-scratch");
    for byte in last_start..pristine.len() {
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        let mut garbled = pristine.clone();
        garbled[byte] ^= 0x40;
        std::fs::write(scratch.join(&segment_name), &garbled).unwrap();

        let store = Store::open_with(&scratch, opts()).unwrap();
        // Flipping a length byte can make the frame "longer than the
        // file" (torn) or the CRC mismatch; either way the last record
        // must not survive garbled and the earlier ones must be intact.
        assert!(
            store.len() == N - 1 || store.get(&key(N - 1)).as_deref() == Some(&value(N - 1)),
            "byte {byte}: a garbled record survived decode"
        );
        for i in 0..N - 1 {
            assert_eq!(
                store.get(&key(i)).as_deref(),
                Some(&value(i)),
                "byte {byte}: intact prefix record {i} lost"
            );
        }
    }

    std::fs::remove_dir_all(&base).unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn concurrent_writers_and_checkpoints_lose_nothing() {
    // Writers from many threads interleaved with checkpoints: every
    // committed key must be present after reopen, whichever side of the
    // snapshot it landed on.
    let dir = tmp_dir("concurrent");
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 25;
    {
        let store = Store::open_with(&dir, opts()).unwrap();
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        store
                            .put(&format!("w{w}/k{i:03}"), vec![w as u8, i as u8])
                            .unwrap();
                        if i % 10 == 9 {
                            store.checkpoint().unwrap();
                        }
                    }
                });
            }
        });
    }
    let store = Store::open_with(&dir, opts()).unwrap();
    assert_eq!(store.len(), WRITERS * PER_WRITER);
    for w in 0..WRITERS {
        for i in 0..PER_WRITER {
            assert_eq!(
                store.get(&format!("w{w}/k{i:03}")).as_deref(),
                Some(&vec![w as u8, i as u8])
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
