//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of criterion's surface its benches use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Unlike the real
//! crate there is no statistical analysis or HTML report — each benchmark
//! is timed over `sample_size` samples (auto-calibrated iteration counts)
//! and the median per-iteration time is printed.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Times closures over calibrated iteration batches.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>, // ns per iteration, one entry per sample
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes ≥ ~2ms so timer
        // resolution is irrelevant.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        self.samples.push(per_iter_ns);
        // Remaining samples at the calibrated iteration count, bounded so a
        // single benchmark cannot run for minutes.
        let target_iters = iters;
        for _ in 1..self.sample_size {
            let t = Instant::now();
            for _ in 0..target_iters {
                black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / target_iters as f64);
        }
        let _ = per_iter_ns;
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.sort_by(f64::total_cmp);
        self.samples[self.samples.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let median = bencher.median_ns();
        println!(
            "{}/{:<40} time: [{}]",
            self.name,
            id.name,
            format_ns(median)
        );
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id.name), median));
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    /// `(name, median ns)` of every completed benchmark.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored: the stub
    /// has no filters, but `cargo bench` passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        let median = bencher.median_ns();
        println!("{:<48} time: [{}]", id.name, format_ns(median));
        self.results.push((id.name, median));
        self
    }

    /// Prints the closing summary.
    pub fn final_summary(&self) {
        println!("benchmarks complete: {} results", self.results.len());
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|(_, ns)| *ns > 0.0));
    }
}
