//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` 0.9's surface it actually uses:
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and of ample quality for the
//! synthetic-data and test workloads here. It is **not** the upstream
//! ChaCha-based `StdRng` and must not be used for anything
//! security-sensitive.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full domain that
/// [`Rng::random`] promises (for floats: `[0, 1)`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::standard_sample(rng);
        // `u < 1`, so the result stays strictly below `hi` for finite spans.
        let v = lo + u * (hi - lo);
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0);
                // Multiply-shift bounded sampling (Lemire); the tiny bias of
                // skipping the rejection step is irrelevant for test data.
                let w = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + w as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The user-facing random-value interface; blanket-implemented for every
/// [`RngCore`] exactly as in upstream `rand`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (floats: `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A uniformly random value in the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "random_range: empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(2.5..3.5f64);
            assert!((2.5..3.5).contains(&v));
            let n = rng.random_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let s: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = s / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
