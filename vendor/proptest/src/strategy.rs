//! The [`Strategy`] trait and the combinators the workspace's tests use:
//! ranges, tuples, [`Just`] and [`Strategy::prop_map`].

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.f64_in(self.start as f64, self.end as f64) as f32
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let w = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + w as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
