//! Deterministic case generation and execution.

use crate::strategy::Strategy;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; the property does not hold.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies. A fixed-seed xoshiro256++ keeps every run
/// of a test binary deterministic.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: rand::rngs::StdRng,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        use rand::Rng;
        self.rng.random_range(lo..hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        use rand::Rng;
        self.rng.random_range(lo..hi)
    }
}

/// Generates inputs and drives the case closure.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs the property: draws inputs from `strategy` until
    /// `config.cases` cases have passed, panicking on the first failure.
    /// Rejected cases (via `prop_assume!`) are skipped, with a global
    /// attempt cap so a pathological assumption cannot loop forever.
    pub fn run<S, F>(&mut self, strategy: &S, mut case: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        // Seed derived from the case count only: deterministic across runs
        // of the same binary, independent of scheduling.
        let mut rng = TestRng::new(0x9E3779B97F4A7C15 ^ u64::from(self.config.cases));
        let mut passed = 0u32;
        let max_attempts = self.config.cases.saturating_mul(20).max(1024);
        let mut rejected = 0u32;
        for attempt in 0..max_attempts {
            if passed >= self.config.cases {
                return;
            }
            let value = strategy.generate(&mut rng);
            match case(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: case failed (attempt {attempt}, after {passed} passing cases): {msg}"
                    );
                }
            }
        }
        panic!(
            "proptest: too many rejected cases ({rejected} rejections, {passed}/{} passed)",
            self.config.cases
        );
    }
}
