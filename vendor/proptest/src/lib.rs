//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest's surface its test suites use: the [`proptest!`],
//! [`prop_compose!`], `prop_assert*` and [`prop_assume!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, and [`collection::vec`]. Cases are generated from a
//! deterministic seeded RNG; there is **no shrinking** — a failure reports
//! the case number and message so the test can be re-run deterministically.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for collection strategies: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.usize_in(self.size.lo, self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };

    /// Module-style access to strategy factories (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests over generated inputs.
///
/// Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0..1.0f64, v in prop::collection::vec(0usize..9, 3)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($arg,)+)| {
                    let case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

/// Builds a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($pname:ident : $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($pname: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($strat,)+), move |($($arg,)+)| $body)
        }
    };
}

/// Fails the current case with a formatted message when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Bind to a bool first so float conditions don't trip
        // clippy::neg_cmp_op_on_partial_ord at every expansion site.
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (it is skipped, not failed) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// Pairs whose first element is no larger than the second.
        fn ordered_pair()(a in 0.0..10.0f64, b in 0.0..10.0f64) -> (f64, f64) {
            if a <= b { (a, b) } else { (b, a) }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn floats_stay_in_range(x in 1.5..2.5f64) {
            prop_assert!((1.5..2.5).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0usize..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_assume(pair in (0usize..10, 0usize..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn composed_strategy_holds(p in ordered_pair()) {
            prop_assert!(p.0 <= p.1, "unordered {:?}", p);
        }

        #[test]
        fn mapped_strategy(v in prop::collection::vec(0.0..1.0f64, 4).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic_with_message() {
        proptest! {
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x > 2.0);
            }
        }
        always_fails();
    }
}
