#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> no ad-hoc printing in library crates (use geoalign-obs)"
# Library layers must report through the obs layer, not stdout/stderr.
# Comment and doc-comment lines are tolerated; the CLI crate is the one
# place allowed to print.
if matches=$(grep -rnE '\b(println|eprintln)!' \
        crates/geoalign-core/src crates/geoalign-serve/src \
        | grep -vE ':[0-9]+:\s*(//|//!|///)'); then
    echo "error: println!/eprintln! in a library crate — route it through geoalign-obs:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> cargo test -q -p geoalign-obs"
cargo test -q -p geoalign-obs

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "All checks passed."
