#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> no ad-hoc printing in library crates (use geoalign-obs)"
# Library layers must report through the obs layer, not stdout/stderr.
# Comment and doc-comment lines are tolerated; the CLI crate is the one
# place allowed to print.
if matches=$(grep -rnE '\b(println|eprintln)!' \
        crates/geoalign-core/src crates/geoalign-serve/src \
        | grep -vE ':[0-9]+:\s*(//|//!|///)'); then
    echo "error: println!/eprintln! in a library crate — route it through geoalign-obs:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> no raw std::thread::spawn outside the execution layer"
# All parallelism flows through geoalign-exec (Executor / WorkerPool) so
# the process has one thread budget; geoalign-serve keeps its single
# accept-loop thread. Everything else must not spawn threads directly.
# std::thread::scope (used by the executor's tests and callers) is fine.
if matches=$(grep -rn 'thread::spawn' crates/*/src \
        | grep -v '^crates/geoalign-exec/src' \
        | grep -v '^crates/geoalign-serve/src' \
        | grep -vE ':[0-9]+:\s*(//|//!|///)'); then
    echo "error: raw thread::spawn outside geoalign-exec — use the Executor or WorkerPool:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> no unbounded reads in the serve front end"
# Everything geoalign-serve reads off a socket must go through the
# budgeted head/body readers of http.rs: a bare read_line/read_to_end/
# read_to_string has no byte limit and reopens the slowloris/huge-head
# hole the hardening suite closes. (Tests and benches may read freely —
# the gate covers src/ only.)
if matches=$(grep -rnE '\b(read_line|read_to_end|read_to_string)\b' \
        crates/geoalign-serve/src \
        | grep -vE ':[0-9]+:\s*(//|//!|///)'); then
    echo "error: unbounded read in geoalign-serve — use the budgeted readers in http.rs:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> cargo test -q -p geoalign-obs"
cargo test -q -p geoalign-obs

echo "==> serve hardening suite (hostile input, keep-alive, shedding)"
cargo test -q -p geoalign-serve --test http_hardening

echo "==> executor stress pass (GEOALIGN_THREADS=8)"
# Re-run the execution layer's tests with an oversubscribed thread budget
# (the env default is available parallelism); shakes out ordering bugs
# that a single-thread default would hide.
GEOALIGN_THREADS=8 cargo test -q -p geoalign-exec

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "All checks passed."
