#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> no ad-hoc printing in library crates (use geoalign-obs)"
# Library layers must report through the obs layer, not stdout/stderr.
# Comment and doc-comment lines are tolerated; the CLI crate is the one
# place allowed to print.
if matches=$(grep -rnE '\b(println|eprintln)!' \
        crates/geoalign-core/src crates/geoalign-serve/src \
        | grep -vE ':[0-9]+:\s*(//|//!|///)'); then
    echo "error: println!/eprintln! in a library crate — route it through geoalign-obs:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> no raw std::thread::spawn outside the execution layer"
# All parallelism flows through geoalign-exec (Executor / WorkerPool) so
# the process has one thread budget; geoalign-serve keeps its single
# reactor thread (spawned via thread::Builder in reactor.rs — nothing
# else in serve may create threads, and in particular never one per
# connection). std::thread::scope (used by the executor's tests and
# callers) is fine. The one other sanctioned thread is the profiler's
# sampler (geoalign-obs/src/profile.rs) — it must live outside the pool
# because it observes the pool, and it spawns via thread::Builder so it
# is named in profiles and thread dumps.
if matches=$(grep -rn 'thread::spawn' crates/*/src \
        | grep -v '^crates/geoalign-exec/src' \
        | grep -v '^crates/geoalign-serve/src/reactor.rs' \
        | grep -v '^crates/geoalign-obs/src/profile.rs' \
        | grep -vE ':[0-9]+:\s*(//|//!|///)'); then
    echo "error: raw thread::spawn outside geoalign-exec — use the Executor or WorkerPool:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> no blocking socket idioms in the serve reactor path"
# The serve front end is a readiness reactor over O_NONBLOCK sockets:
# idle time is handled by poll timeouts and explicit deadlines, never by
# set_read_timeout-driven blocking reads. A set_read_timeout in src/
# means a blocking read crept back into the event path (tests may use it
# on their client sockets freely — in-file test modules are skipped;
# set_write_timeout stays legal for the reactor's synchronous shed write).
reactor_blocking=""
for f in crates/geoalign-serve/src/*.rs; do
    limit=$({ grep -nE '^(mod tests|#\[cfg\(test\)\])' "$f" || true; } | head -1 | cut -d: -f1)
    [ -z "$limit" ] && limit=0
    found=$(awk -v limit="$limit" -v file="$f" \
        '(limit == 0 || NR < limit) && /set_read_timeout/ && $0 !~ /^[[:space:]]*\/\// \
         { print file ":" NR ": " $0 }' "$f")
    if [ -n "$found" ]; then
        reactor_blocking="${reactor_blocking}${found}"$'\n'
    fi
done
if [ -n "$reactor_blocking" ]; then
    echo "error: set_read_timeout in geoalign-serve/src — the reactor owns all idle handling:" >&2
    echo "$reactor_blocking" >&2
    exit 1
fi

echo "==> no unbounded reads in the serve front end"
# Everything geoalign-serve reads off a socket must go through the
# budgeted head/body readers of http.rs: a bare read_line/read_to_end/
# read_to_string has no byte limit and reopens the slowloris/huge-head
# hole the hardening suite closes. (Tests and benches may read freely —
# the gate covers src/ only.)
if matches=$(grep -rnE '\b(read_line|read_to_end|read_to_string)\b' \
        crates/geoalign-serve/src \
        | grep -vE ':[0-9]+:\s*(//|//!|///)'); then
    echo "error: unbounded read in geoalign-serve — use the budgeted readers in http.rs:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> metric naming: geoalign_<crate>_<name>_<unit>"
# Every registered metric name is a literal "geoalign_..." string in a
# src/ file; hold them all to the §8 convention so a scrape stays
# self-describing. <crate> must be a workspace layer (demo/test/expo are
# the obs crate's own doc and test fixtures); <unit> is _total for
# counters, _micros for wall-time histograms, or a bare quantity noun
# for gauges/value histograms. Dynamically formatted names (the per-route
# SLO series) are covered by their format-string suffixes in slo.rs and
# its tests, not this literal scan.
bad_names=$(grep -rhoE '"geoalign_[a-z0-9_]+"' crates/*/src | sort -u \
    | grep -vE '^"geoalign_(demo|test|expo)_' \
    | grep -vE '^"geoalign_(core|partition|serve|store|agg|obs|exec)_[a-z0-9_]+_(total|micros|entries|candidates|points|bytes|size|iterations|connections|transitions)"$' \
    || true)
if [ -n "$bad_names" ]; then
    echo "error: metric name outside the geoalign_<crate>_<name>_<unit> convention:" >&2
    echo "$bad_names" >&2
    exit 1
fi

echo "==> cargo test -q -p geoalign-obs"
cargo test -q -p geoalign-obs

echo "==> /debug introspection suite (gate + live profile)"
# Proves /debug/* 404s without --debug-endpoints and that a live-server
# /debug/profile returns collapsed stacks naming the pipeline phases.
cargo test -q -p geoalign-serve --test debug_introspection

echo "==> serve hardening suite (hostile input, keep-alive, shedding)"
cargo test -q -p geoalign-serve --test http_hardening

echo "==> serve hardening under a starved thread budget (GEOALIGN_THREADS=2)"
# The reactor must hold every contract with two compute workers: idle
# connections cost no worker, so a tiny pool changes throughput, never
# lifecycle semantics (408s, shedding, drains, keep-alive).
GEOALIGN_THREADS=2 cargo test -q -p geoalign-serve --test http_hardening

echo "==> no unchecked I/O unwraps in geoalign-store"
# A persistence layer must surface every I/O failure as a StoreError the
# caller can handle; an unwrap() on a Result in src/ turns a full disk
# into a panic mid-request. Lock poisoning is the one tolerated use and
# is written as expect("... poisoned") to document itself.
store_unwraps=""
for f in crates/geoalign-store/src/*.rs; do
    # Only non-test code counts: stop at the `mod tests` line when present.
    # (grep exits 1 on no match; keep that from tripping set -o pipefail.)
    limit=$({ grep -n '^mod tests' "$f" || true; } | head -1 | cut -d: -f1)
    [ -z "$limit" ] && limit=0
    found=$(awk -v limit="$limit" -v file="$f" \
        '(limit == 0 || NR < limit) && /\.unwrap\(\)/ && $0 !~ /^[[:space:]]*\/\// \
         { print file ":" NR ": " $0 }' "$f")
    if [ -n "$found" ]; then
        store_unwraps="${store_unwraps}${found}"$'\n'
    fi
done
if [ -n "$store_unwraps" ]; then
    echo "error: unwrap() in geoalign-store/src — return a StoreError instead:" >&2
    echo "$store_unwraps" >&2
    exit 1
fi

echo "==> no unchecked unwraps in geoalign-agg"
# The aggregate-state crate feeds the serve ingest path: a malformed or
# truncated state must surface as an AggError, never a panic. Lock
# poisoning is the one tolerated use, written as expect("... poisoned").
agg_unwraps=""
for f in crates/geoalign-agg/src/*.rs; do
    limit=$({ grep -n '^mod tests' "$f" || true; } | head -1 | cut -d: -f1)
    [ -z "$limit" ] && limit=0
    found=$(awk -v limit="$limit" -v file="$f" \
        '(limit == 0 || NR < limit) && /\.unwrap\(\)/ && $0 !~ /^[[:space:]]*\/\// \
         { print file ":" NR ": " $0 }' "$f")
    if [ -n "$found" ]; then
        agg_unwraps="${agg_unwraps}${found}"$'\n'
    fi
done
if [ -n "$agg_unwraps" ]; then
    echo "error: unwrap() in geoalign-agg/src — return an AggError instead:" >&2
    echo "$agg_unwraps" >&2
    exit 1
fi

echo "==> aggregate-state algebra pass (GEOALIGN_THREADS=8)"
# Merge commutativity/associativity/split-invariance and codec roundtrips
# under an oversubscribed thread budget.
GEOALIGN_THREADS=8 cargo test -q -p geoalign-agg --test proptests

echo "==> store torture pass (GEOALIGN_THREADS=8)"
# WAL truncated at every byte offset + concurrent writers/checkpoints,
# under an oversubscribed thread budget.
GEOALIGN_THREADS=8 cargo test -q -p geoalign-store --test recovery_torture

echo "==> zero-allocation kernel cores (DESIGN.md §15)"
# The gated hot-path cores own no allocations: every buffer they touch
# comes in through &mut arguments or a scratch arena, so a steady-state
# iteration performs zero heap allocations. An allocation idiom
# (.clone() / .to_vec() / vec![) inside one of these bodies is a
# regression even if it compiles clean. Capacity-reusing copies
# (clone_from / copy_from / extend) stay legal.
alloc_hits=""
while read -r file fns; do
    for fn in $fns; do
        found=$(awk -v fname="$fn" -v file="$file" '
            in_fn == 0 && $0 ~ ("fn " fname "[(<]") { in_fn = 1; seen = 1 }
            in_fn {
                if ($0 !~ /^[[:space:]]*\/\// && $0 ~ /\.clone\(\)|\.to_vec\(|vec!\[/)
                    print file ":" NR ": " $0
                n = gsub(/\{/, "{"); m = gsub(/\}/, "}")
                depth += n - m
                if (depth > 0) opened = 1
                if (opened && depth <= 0) in_fn = 0
            }
            END { if (!seen) print file ": gated fn " fname " not found (update check.sh)" }
        ' "$file")
        if [ -n "$found" ]; then
            alloc_hits="${alloc_hits}${found}"$'\n'
        fi
    done
done <<'EOF'
crates/geoalign-linalg/src/dense.rs gram_with matvec_into tr_matvec_into householder_factor householder_apply_qt householder_solve_into
crates/geoalign-linalg/src/sparse.rs matvec_into
crates/geoalign-linalg/src/simplex_ls.rs fista_iterate active_set_iterate eq_constrained_ls_scratch project_to_simplex_into
crates/geoalign-linalg/src/nnls.rs nnls_iterate
crates/geoalign-core/src/prepare.rs apply_values_into
EOF
if [ -n "$alloc_hits" ]; then
    echo "error: allocation in a zero-alloc kernel core — route the buffer through the scratch arena:" >&2
    echo "$alloc_hits" >&2
    exit 1
fi

echo "==> kernel bit-identity pass (GEOALIGN_THREADS=8)"
# Old-vs-new kernel transliterations must agree bitwise at an
# oversubscribed thread budget too (proptest sweeps + solver fixtures).
GEOALIGN_THREADS=8 cargo test -q -p geoalign-linalg --test kernel_equivalence

echo "==> executor stress pass (GEOALIGN_THREADS=8)"
# Re-run the execution layer's tests with an oversubscribed thread budget
# (the env default is available parallelism); shakes out ordering bugs
# that a single-thread default would hide.
GEOALIGN_THREADS=8 cargo test -q -p geoalign-exec

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> ingest bench smoke (small universe)"
# Exercises the incremental-vs-full fold comparison end to end, including
# its bit-identity assertions; the committed BENCH_ingest.json baseline is
# regenerated separately at paper scale.
./target/release/ingest --small --out target/BENCH_ingest_smoke.json >/dev/null

echo "==> kernels bench smoke (small universe)"
# Runs the old-vs-new throughput comparison at the small scale, including
# its in-binary bit-identity assertions at 1/2/8 threads; the committed
# BENCH_kernels.json baseline is regenerated separately at paper scale.
./target/release/kernels --small --trials 1 --out target/BENCH_kernels_smoke.json >/dev/null

echo "All checks passed."
