//! Integration tests of the tabular workflow: CSV tables → pipeline join →
//! universe subsetting, spanning partition and core.

use geoalign::core::eval::Catalog;
use geoalign::partition::{AggregateTable, CrosswalkTable, UniverseSubset};
use geoalign::{GeoAlign, IntegrationPipeline, ReferenceData};
use geoalign_datagen::{us_catalog, CatalogSize};
use geoalign_geom::{Aabb, Point2};

#[test]
fn csv_roundtrip_through_the_pipeline() {
    // Simulate the motivating scenario entirely from CSV text.
    let steam = AggregateTable::parse_csv("zip,steam\nz1,10\nz2,20\nz3,30\n").unwrap();
    let income = AggregateTable::parse_csv("county,income\nA,50000\nB,60000\n").unwrap();
    let xwalk =
        CrosswalkTable::parse_csv("zip,county,population\nz1,A,100\nz2,A,60\nz2,B,40\nz3,B,80\n")
            .unwrap();

    let (source_idx, target_idx) = xwalk.unit_indices();
    let dm = xwalk.to_matrix(&source_idx, &target_idx).unwrap();
    let population = ReferenceData::from_dm("population", dm).unwrap();

    let mut pipeline = IntegrationPipeline::new();
    pipeline.register_system("zip", source_idx.ids().iter().cloned());
    pipeline.register_system("county", target_idx.ids().iter().cloned());
    pipeline
        .register_reference("zip", "county", population)
        .unwrap();

    let joined = pipeline
        .join(&[("zip", &steam), ("county", &income)], "county")
        .unwrap();
    let csv = joined.to_csv();
    // Steam realigned by the population split, income untouched.
    assert!(csv.contains("A,22,50000"), "unexpected join output:\n{csv}");
    assert!(csv.contains("B,38,60000"));
}

#[test]
fn subsetting_reproduces_the_papers_factor_control() {
    // §4.3: sub-universes are built by subsetting the national datasets,
    // not by regenerating data. Check that a region subset of a synthetic
    // US catalog still supports accurate GeoAlign estimates.
    let synth = us_catalog(
        CatalogSize {
            n_source: 200,
            n_target: 20,
            base_points: 15_000,
        },
        77,
    )
    .unwrap();
    let bounds = synth.universe.bounds;
    // The western half of the universe.
    let half = Aabb::new(bounds.min, Point2::new(bounds.center().x, bounds.max.y));
    let subset =
        UniverseSubset::by_region(&synth.universe.source, &synth.universe.target, &half).unwrap();
    assert!(
        subset.n_source() > 20,
        "selection too small: {}",
        subset.n_source()
    );
    assert!(subset.n_source() < synth.universe.n_source());

    // Restrict every dataset; use Population as objective, rest as refs.
    let pop = synth.get("Population").unwrap();
    let objective = subset.restrict_source(&pop.source).unwrap();
    let refs: Vec<ReferenceData> = synth
        .datasets
        .iter()
        .filter(|d| d.name != "Population")
        .map(|d| {
            let dm = subset.restrict_dm(&d.dm).unwrap();
            ReferenceData::from_dm(d.name.clone(), dm).unwrap()
        })
        .collect();
    let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
    let out = GeoAlign::new().estimate(&objective, &ref_slices).unwrap();

    // Compare against the subset ground truth, which is the restriction of
    // the objective's own DM (mass crossing the subset boundary drops on
    // both sides identically).
    let truth = subset.restrict_dm(&pop.dm).unwrap().matrix().col_sums();
    let nrmse = geoalign::linalg::stats::nrmse(&out.estimate, &truth).unwrap();
    assert!(nrmse < 0.25, "subset crosswalk NRMSE {nrmse}");
}

#[test]
fn eval_catalog_from_synthetic_subset() {
    // The subset path composes with the evaluation harness.
    let synth = us_catalog(
        CatalogSize {
            n_source: 120,
            n_target: 12,
            base_points: 8_000,
        },
        3,
    )
    .unwrap();
    let full: Catalog = geoalign::to_eval_catalog(&synth).unwrap();
    assert_eq!(full.len(), 10);
    assert_eq!(full.n_source(), synth.universe.n_source());
}
