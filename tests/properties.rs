//! Property-based tests of the GeoAlign algorithm's invariants over random
//! reference sets.

use geoalign::{AggregateVector, DisaggregationMatrix, GeoAlign, ReferenceData};
use proptest::prelude::*;

/// Strategy: a random reference over `n_source × n_target` units with a
/// random sparse non-negative DM in which every row has at least one entry.
fn reference(n_source: usize, n_target: usize) -> impl Strategy<Value = ReferenceData> {
    prop::collection::vec(
        (
            prop::collection::vec(0.0..5.0f64, n_target),
            0usize..n_target,
        ),
        n_source,
    )
    .prop_map(move |rows| {
        let mut triples = Vec::new();
        for (i, (vals, anchor)) in rows.iter().enumerate() {
            let mut has_entry = false;
            for (j, &v) in vals.iter().enumerate() {
                if v > 2.0 {
                    triples.push((i, j, v));
                    has_entry = true;
                }
            }
            if !has_entry {
                triples.push((i, *anchor, 1.0));
            }
        }
        let dm = DisaggregationMatrix::from_triples("r", n_source, n_target, triples).unwrap();
        ReferenceData::from_dm("r", dm).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weights_live_on_the_simplex(
        r1 in reference(6, 3),
        r2 in reference(6, 3),
        r3 in reference(6, 3),
        obj in prop::collection::vec(0.0..50.0f64, 6)
    ) {
        let objective = AggregateVector::new("o", obj).unwrap();
        let r2 = ReferenceData::new("r2", r2.source().clone(), r2.dm().clone()).unwrap();
        let r3 = ReferenceData::new("r3", r3.source().clone(), r3.dm().clone()).unwrap();
        let out = GeoAlign::new().estimate(&objective, &[&r1, &r2, &r3]).unwrap();
        prop_assert!(out.weights.iter().all(|&w| w >= 0.0));
        let s: f64 = out.weights.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-8, "weights sum {s}");
    }

    #[test]
    fn estimates_preserve_total_mass(
        r1 in reference(5, 4),
        r2 in reference(5, 4),
        obj in prop::collection::vec(0.1..50.0f64, 5)
    ) {
        // Every row of every reference has mass, so no objective mass can
        // be dropped (Eq. 16 holds with equality).
        let objective = AggregateVector::new("o", obj).unwrap();
        let r2 = ReferenceData::new("r2", r2.source().clone(), r2.dm().clone()).unwrap();
        let out = GeoAlign::new().estimate(&objective, &[&r1, &r2]).unwrap();
        let est: f64 = out.estimate.iter().sum();
        prop_assert!((est - objective.total()).abs() < 1e-6 * objective.total().max(1.0));
        // Entries non-negative.
        prop_assert!(out.estimate.iter().all(|&v| v >= 0.0));
        for (_, _, v) in out.dm_estimate.iter() {
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn single_reference_equals_dasymetric(
        r in reference(5, 3),
        obj in prop::collection::vec(0.0..20.0f64, 5)
    ) {
        let objective = AggregateVector::new("o", obj).unwrap();
        let ga = GeoAlign::new().estimate(&objective, &[&r]).unwrap();
        let das = geoalign::dasymetric(&objective, &r).unwrap();
        for (g, d) in ga.estimate.iter().zip(&das) {
            prop_assert!((g - d).abs() < 1e-8, "{g} vs {d}");
        }
    }

    #[test]
    fn estimate_is_invariant_to_reference_scale(
        r1 in reference(5, 3),
        r2 in reference(5, 3),
        obj in prop::collection::vec(0.1..20.0f64, 5),
        scale in 0.01..100.0f64
    ) {
        // Scaling an entire reference (its source vector and DM together)
        // must not change the estimate: §3.4's normalization makes the
        // magnitude of references a non-factor.
        let objective = AggregateVector::new("o", obj).unwrap();
        let r2 = ReferenceData::new("r2", r2.source().clone(), r2.dm().clone()).unwrap();
        let out1 = GeoAlign::new().estimate(&objective, &[&r1, &r2]).unwrap();

        let scaled_vals: Vec<f64> = r1.source().values().iter().map(|v| v * scale).collect();
        let scaled_dm = DisaggregationMatrix::new(
            "r",
            r1.dm().matrix().scaled(scale),
        ).unwrap();
        let r1s = ReferenceData::new(
            "r",
            AggregateVector::new("r", scaled_vals).unwrap(),
            scaled_dm,
        ).unwrap();
        let out2 = GeoAlign::new().estimate(&objective, &[&r1s, &r2]).unwrap();
        // When weight learning has a unique optimum the estimates must
        // match exactly. With degenerate references (collinear or constant
        // columns) any weight vector on the optimal face is a valid answer
        // and tiny rounding differences in the normalization may select
        // different vertices — in that case what scale invariance *does*
        // guarantee is that both solutions fit the (normalized) objective
        // equally well.
        let close_weights = out1
            .weights
            .iter()
            .zip(&out2.weights)
            .all(|(a, b)| (a - b).abs() < 1e-6);
        if close_weights {
            for (a, b) in out1.estimate.iter().zip(&out2.estimate) {
                prop_assert!(
                    (a - b).abs() < 1e-6 * a.abs().max(1.0),
                    "scale variance: {a} vs {b} (scale {scale})"
                );
            }
        } else {
            let fit = |weights: &[f64]| -> f64 {
                let cols = [r1.source().normalized(), r2.source().normalized()];
                let b = objective.normalized();
                (0..b.len())
                    .map(|i| {
                        let pred: f64 =
                            weights.iter().zip(&cols).map(|(w, c)| w * c[i]).sum();
                        (pred - b[i]) * (pred - b[i])
                    })
                    .sum()
            };
            let f1 = fit(&out1.weights);
            let f2 = fit(&out2.weights);
            prop_assert!(
                (f1 - f2).abs() < 1e-6 * f1.max(1.0),
                "different weights with different fit: {f1} vs {f2}"
            );
        }
    }

    #[test]
    fn prepared_crosswalk_matches_one_shot_estimate(
        r1 in reference(6, 3),
        r2 in reference(6, 3),
        r3 in reference(6, 3),
        objs in prop::collection::vec(prop::collection::vec(0.0..50.0f64, 6), 1..4)
    ) {
        // The two-step prepare/apply split must be numerically identical
        // to the one-shot path: both funnel through the same Gram-system
        // solve and the same disaggregation arithmetic.
        let r2 = ReferenceData::new("r2", r2.source().clone(), r2.dm().clone()).unwrap();
        let r3 = ReferenceData::new("r3", r3.source().clone(), r3.dm().clone()).unwrap();
        let aligner = GeoAlign::new();
        let prepared = aligner.prepare(&[&r1, &r2, &r3]).unwrap();
        for (k, obj) in objs.iter().enumerate() {
            let objective = AggregateVector::new(format!("o{k}"), obj.clone()).unwrap();
            let one_shot = aligner.estimate(&objective, &[&r1, &r2, &r3]).unwrap();
            let applied = prepared.apply(&objective).unwrap();
            for (w1, w2) in one_shot.weights.iter().zip(&applied.weights) {
                prop_assert!((w1 - w2).abs() <= 1e-12, "weights {w1} vs {w2}");
            }
            for (e1, e2) in one_shot.estimate.iter().zip(&applied.estimate) {
                prop_assert!((e1 - e2).abs() <= 1e-12, "estimate {e1} vs {e2}");
            }
            let fast = prepared.apply_values(&objective).unwrap();
            for (e1, e2) in applied.estimate.iter().zip(&fast.estimate) {
                prop_assert!(
                    (e1 - e2).abs() <= 1e-9 * e1.abs().max(1.0),
                    "fast path {e1} vs {e2}"
                );
            }
        }
    }

    #[test]
    fn permuting_references_permutes_weights(
        r1 in reference(6, 3),
        r2 in reference(6, 3),
        obj in prop::collection::vec(0.1..20.0f64, 6)
    ) {
        let objective = AggregateVector::new("o", obj).unwrap();
        let r2 = ReferenceData::new("r2", r2.source().clone(), r2.dm().clone()).unwrap();
        let ab = GeoAlign::new().estimate(&objective, &[&r1, &r2]).unwrap();
        let ba = GeoAlign::new().estimate(&objective, &[&r2, &r1]).unwrap();
        // Estimates identical; weights swapped. (Ties in degenerate cases
        // could pick different optima, so compare objectives through the
        // estimates rather than the raw weights.)
        for (x, y) in ab.estimate.iter().zip(&ba.estimate) {
            prop_assert!((x - y).abs() < 1e-6 * x.abs().max(1.0), "{x} vs {y}");
        }
    }
}
