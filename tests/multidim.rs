//! Integration tests of the dimension-agnostic claim (§3.4): the identical
//! algorithm code path over 1-D intervals and 3-D boxes.

use geoalign::geom::interval::{bins_at, equal_bins};
use geoalign::geom::ndbox::grid_partition;
use geoalign::partition::{BoxUnitSystem, DisaggregationMatrix, IntervalUnitSystem, Overlay};
use geoalign::{AggregateVector, GeoAlign, ReferenceData};

#[test]
fn histogram_realignment_is_exact_when_distributions_match() {
    // When the objective is distributed exactly like the reference, the
    // realignment is exact regardless of bin misalignment.
    let narrow = IntervalUnitSystem::new("narrow", equal_bins(0.0, 60.0, 12).unwrap()).unwrap();
    let wide = IntervalUnitSystem::new("wide", bins_at(0.0, 60.0, &[13.0, 37.0]).unwrap()).unwrap();

    // Records at deterministic positions; objective = 3 × reference.
    let records: Vec<f64> = (0..600)
        .map(|k| 60.0 * ((k as f64 * 0.618) % 1.0))
        .collect();
    let mut ref_src = vec![0.0; narrow.len()];
    let mut obj_src = vec![0.0; narrow.len()];
    let mut triples = Vec::new();
    let mut obj_truth = vec![0.0; wide.len()];
    for &x in &records {
        let i = narrow.locate(x).unwrap();
        let j = wide.locate(x).unwrap();
        ref_src[i] += 1.0;
        obj_src[i] += 3.0;
        obj_truth[j] += 3.0;
        triples.push((i, j, 1.0));
    }
    let dm = DisaggregationMatrix::from_triples("ref", narrow.len(), wide.len(), triples).unwrap();
    let reference =
        ReferenceData::new("ref", AggregateVector::new("ref", ref_src).unwrap(), dm).unwrap();
    let objective = AggregateVector::new("obj", obj_src).unwrap();

    let out = GeoAlign::new().estimate(&objective, &[&reference]).unwrap();
    for (e, t) in out.estimate.iter().zip(&obj_truth) {
        assert!((e - t).abs() < 1e-9, "estimate {e} vs truth {t}");
    }
}

#[test]
fn interval_overlay_measure_dm_is_volume_preserving() {
    let narrow = IntervalUnitSystem::new("narrow", equal_bins(0.0, 10.0, 7).unwrap()).unwrap();
    let wide = IntervalUnitSystem::new("wide", bins_at(0.0, 10.0, &[3.3, 6.6]).unwrap()).unwrap();
    let overlay = Overlay::intervals(&narrow, &wide).unwrap();
    let dm = overlay.measure_dm("length").unwrap();
    let lengths = narrow.measures();
    let rows = dm.matrix().row_sums();
    for (r, l) in rows.iter().zip(&lengths) {
        assert!((r - l).abs() < 1e-12);
    }
}

#[test]
fn three_dimensional_crosswalk_runs_the_same_code_path() {
    // Fine 4×4×4 grid to a shifted 2×2×2 grid, with a synthetic attribute
    // concentrated in one corner.
    let fine = BoxUnitSystem::new(
        "fine",
        grid_partition(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &[4, 4, 4]).unwrap(),
    )
    .unwrap();
    // Three coarse cells per axis over a shifted cube: interior boundaries
    // at 0.35 and 0.65 never align with the fine grid's 0.25/0.5/0.75.
    let coarse = BoxUnitSystem::new(
        "coarse",
        grid_partition(&[(0.05, 0.95), (0.05, 0.95), (0.05, 0.95)], &[3, 3, 3]).unwrap(),
    )
    .unwrap();

    // Quasi-random points weighted toward the (0,0,0) corner.
    let mut ref_src = vec![0.0; fine.len()];
    let mut obj_src = vec![0.0; fine.len()];
    let mut obj_truth = vec![0.0; coarse.len()];
    let mut triples = Vec::new();
    for k in 0..20_000u32 {
        let p = [
            (k as f64 * 0.8191725133961645) % 1.0,
            (k as f64 * 0.6710436067037893) % 1.0,
            (k as f64 * 0.5497004779019703) % 1.0,
        ];
        let w = (1.5 - p[0] - p[1] * 0.3 - p[2] * 0.2).max(0.1);
        let (Some(i), Some(j)) = (fine.locate(&p).unwrap(), coarse.locate(&p).unwrap()) else {
            continue;
        };
        ref_src[i] += w;
        obj_src[i] += 2.0 * w;
        obj_truth[j] += 2.0 * w;
        triples.push((i, j, w));
    }
    let dm = DisaggregationMatrix::from_triples("ref", fine.len(), coarse.len(), triples).unwrap();
    let reference =
        ReferenceData::new("ref", AggregateVector::new("ref", ref_src).unwrap(), dm).unwrap();
    let objective = AggregateVector::new("obj", obj_src).unwrap();

    let out = GeoAlign::new().estimate(&objective, &[&reference]).unwrap();
    for (e, t) in out.estimate.iter().zip(&obj_truth) {
        assert!((e - t).abs() < 1e-9, "3-D estimate {e} vs truth {t}");
    }

    // Volume weighting via the box overlay also runs, with higher error.
    let overlay = Overlay::boxes(&fine, &coarse).unwrap();
    let volume_dm = overlay.measure_dm("volume").unwrap();
    let vw = geoalign::areal_weighting(&objective, &volume_dm).unwrap();
    let vw_err: f64 = vw.iter().zip(&obj_truth).map(|(a, b)| (a - b).abs()).sum();
    assert!(
        vw_err > 1.0,
        "volume weighting should err on a skewed field: {vw_err}"
    );
}
