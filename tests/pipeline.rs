//! End-to-end integration tests spanning all crates: synthetic universe
//! generation → crosswalk aggregation → GeoAlign estimation → evaluation.

use geoalign::core::eval::{cross_validate, noise_experiment, selection_experiment, LeaveOut};
use geoalign::datagen::{ny_catalog, us_catalog, CatalogSize};
use geoalign::{
    ArealWeightingInterpolator, DasymetricInterpolator, GeoAlign, GeoAlignInterpolator,
    Interpolator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small() -> CatalogSize {
    CatalogSize {
        n_source: 90,
        n_target: 9,
        base_points: 6_000,
    }
}

#[test]
fn geoalign_recovers_planted_attributes_well() {
    // On every NY dataset, leave-one-out GeoAlign stays under a loose NRMSE
    // budget — the algorithm works end to end on realistic structure.
    let synth = ny_catalog(small(), 11).unwrap();
    let catalog = geoalign::to_eval_catalog(&synth).unwrap();
    let ga = GeoAlignInterpolator::new();
    let methods: Vec<&dyn Interpolator> = vec![&ga];
    let report = cross_validate(&catalog, &methods).unwrap();
    for cell in &report.cells {
        let v = cell.nrmse.unwrap();
        assert!(v.is_finite() && v >= 0.0);
        assert!(v < 0.5, "{}: NRMSE {v}", cell.dataset);
    }
}

#[test]
fn geoalign_beats_areal_weighting_on_demographics() {
    // The paper's headline comparison, at integration-test scale: on the
    // population-like datasets GeoAlign is much more accurate than the
    // homogeneity assumption.
    let synth = us_catalog(small(), 5).unwrap();
    let catalog = geoalign::to_eval_catalog(&synth).unwrap();
    let ga = GeoAlignInterpolator::new();
    let aw = ArealWeightingInterpolator::new(catalog.measure_dm().clone());
    let methods: Vec<&dyn Interpolator> = vec![&ga, &aw];
    let report = cross_validate(&catalog, &methods).unwrap();
    for dataset in ["Population", "USPS Residential Address"] {
        let g = report.nrmse(dataset, "GeoAlign").unwrap();
        let a = report.nrmse(dataset, "areal weighting").unwrap();
        assert!(
            a > 2.0 * g,
            "{dataset}: areal weighting {a} vs GeoAlign {g}"
        );
    }
}

#[test]
fn dasymetric_fails_on_anticorrelated_objectives() {
    // Figure 5b's observation: single-reference dasymetric methods break
    // down on Area and USA Uninhabited Places while GeoAlign stays sane.
    let synth = us_catalog(small(), 5).unwrap();
    let catalog = geoalign::to_eval_catalog(&synth).unwrap();
    let ga = GeoAlignInterpolator::new();
    let das = DasymetricInterpolator::new("Population");
    let methods: Vec<&dyn Interpolator> = vec![&ga, &das];
    let report = cross_validate(&catalog, &methods).unwrap();
    for dataset in ["Area (Sq. Miles)", "USA Uninhabited Places"] {
        let g = report.nrmse(dataset, "GeoAlign").unwrap();
        let d = report.nrmse(dataset, "dasymetric(Population)").unwrap();
        assert!(
            d > g,
            "{dataset}: dasymetric {d} should exceed GeoAlign {g}"
        );
    }
}

#[test]
fn volume_preservation_holds_across_the_catalog() {
    // Eq. 16 at integration scale: estimated DM row sums reproduce the
    // objective's source aggregates for every cross-validation fold.
    let synth = ny_catalog(small(), 3).unwrap();
    let catalog = geoalign::to_eval_catalog(&synth).unwrap();
    for (di, test) in catalog.datasets().iter().enumerate() {
        let refs = catalog.references_excluding(di);
        let out = GeoAlign::new()
            .estimate(test.reference().source(), &refs)
            .unwrap();
        let sums = out.dm_estimate.row_sums();
        for (i, (&s, &o)) in sums
            .iter()
            .zip(test.reference().source().values())
            .enumerate()
        {
            // Units where no reference has mass legitimately drop to zero.
            if s == 0.0 {
                continue;
            }
            assert!(
                (s - o).abs() <= 1e-6 * o.max(1.0),
                "{}: row {i} sum {s} vs source {o}",
                test.name()
            );
        }
        // Total estimated mass never exceeds the objective's total.
        let est_total: f64 = out.estimate.iter().sum();
        let src_total = test.reference().source().total();
        assert!(est_total <= src_total * (1.0 + 1e-9));
    }
}

#[test]
fn noise_experiment_is_stable_at_low_levels() {
    let synth = us_catalog(small(), 19).unwrap();
    let catalog = geoalign::to_eval_catalog(&synth).unwrap();
    let ga = GeoAlignInterpolator::new();
    let mut rng = StdRng::seed_from_u64(99);
    let mut rand01 = move || rng.random::<f64>();
    let report = noise_experiment(&catalog, &ga, &[1.0, 5.0], 5, &mut rand01).unwrap();
    for cell in &report.cells {
        assert!(
            cell.summary.median < 1.5,
            "{} at {}%: median ratio {}",
            cell.dataset,
            cell.level_pct,
            cell.summary.median
        );
    }
}

#[test]
fn selection_experiment_least_related_is_harmless() {
    let synth = us_catalog(small(), 23).unwrap();
    let catalog = geoalign::to_eval_catalog(&synth).unwrap();
    let ga = GeoAlignInterpolator::new();
    let policies = [LeaveOut::None, LeaveOut::LeastRelated(1)];
    let report = selection_experiment(&catalog, &ga, &policies).unwrap();
    let mut names: Vec<String> = Vec::new();
    for c in &report.cells {
        if !names.contains(&c.dataset) {
            names.push(c.dataset.clone());
        }
    }
    let mut regressions = 0usize;
    for d in &names {
        let all = report.nrmse(d, LeaveOut::None).unwrap();
        let without = report.nrmse(d, LeaveOut::LeastRelated(1)).unwrap();
        // Dropping the least-related reference should essentially never
        // hurt; allow benign jitter on a couple of datasets.
        if without > all * 1.3 + 0.02 {
            regressions += 1;
        }
    }
    assert!(regressions <= 2, "{regressions} datasets regressed badly");
}

#[test]
fn runtime_is_dominated_by_disaggregation_at_scale() {
    // §4.3: the disaggregation step dominates. Check at a size where the
    // effect is measurable.
    let synth = us_catalog(
        CatalogSize {
            n_source: 1_000,
            n_target: 100,
            base_points: 40_000,
        },
        31,
    )
    .unwrap();
    let catalog = geoalign::to_eval_catalog(&synth).unwrap();
    let refs = catalog.references_excluding(0);
    let objective = catalog.datasets()[0].reference().source();
    let ga = GeoAlign::new();
    // Warm up, then measure.
    let _ = ga.estimate(objective, &refs).unwrap();
    let out = ga.estimate(objective, &refs).unwrap();
    let total = out.timings.total().as_secs_f64();
    let disagg = out.timings.disaggregation.as_secs_f64();
    assert!(
        disagg > 0.4 * total,
        "disaggregation {disagg}s of {total}s total"
    );
}
