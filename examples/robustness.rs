//! The robustness experiments of paper §4.4 in miniature: noisy references
//! (Figure 7) and leave-n-out reference selection (Figure 8) over a small
//! synthetic US catalog.
//!
//! Run with `cargo run --example robustness`.

use geoalign::core::eval::{noise_experiment, selection_experiment, LeaveOut};
use geoalign::datagen::{us_catalog, CatalogSize};
use geoalign::GeoAlignInterpolator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let synth = us_catalog(CatalogSize::small(), 2024)?;
    let catalog = geoalign::to_eval_catalog(&synth)?;
    let ga = GeoAlignInterpolator::new();

    // --- Noise robustness (§4.4.1). ---
    let mut rng = StdRng::seed_from_u64(7);
    let mut rand01 = move || rng.random::<f64>();
    let noise = noise_experiment(&catalog, &ga, &[10.0, 50.0], 10, &mut rand01)?;
    println!("# RMSE(perturbed)/RMSE(orig) medians — robustness to noisy references");
    println!("{:28} {:>10} {:>10}", "dataset", "10% noise", "50% noise");
    let mut names: Vec<&str> = Vec::new();
    for c in &noise.cells {
        if !names.contains(&c.dataset.as_str()) {
            names.push(&c.dataset);
        }
    }
    for d in &names {
        let at = |lvl: f64| {
            noise
                .cell(d, lvl)
                .map(|c| c.summary.median)
                .unwrap_or(f64::NAN)
        };
        println!("{d:28} {:>10.3} {:>10.3}", at(10.0), at(50.0));
    }

    // --- Reference selection robustness (§4.4.2). ---
    let policies = [
        LeaveOut::None,
        LeaveOut::LeastRelated(2),
        LeaveOut::MostRelated(2),
    ];
    let sel = selection_experiment(&catalog, &ga, &policies)?;
    println!("\n# NRMSE under reference leave-out — robustness to reference choice");
    println!(
        "{:28} {:>10} {:>10} {:>10}",
        "dataset", "all", "-2 least", "-2 most"
    );
    for d in &names {
        let at = |p: LeaveOut| sel.nrmse(d, p).unwrap_or(f64::NAN);
        println!(
            "{d:28} {:>10.4} {:>10.4} {:>10.4}",
            at(LeaveOut::None),
            at(LeaveOut::LeastRelated(2)),
            at(LeaveOut::MostRelated(2))
        );
    }
    println!("\nDropping the *least*-related references barely moves the error;");
    println!("only removing every well-related reference degrades accuracy (§4.4.2).");
    Ok(())
}
