//! The aggregate interpolation problem in three dimensions (paper §2.2:
//! "3-D GIS data, such as the distribution of disease, evaluated for cubic
//! units of different size scales").
//!
//! GeoAlign is dimension-agnostic (§3.4): the algorithm consumes only
//! aggregate vectors and disaggregation matrices, so this example runs the
//! identical code path over 3-D box units — a fine 6×6×6 grid realigned to
//! a coarse, *shifted* 3×3×3 grid (spatially incongruent in all axes).
//!
//! Run with `cargo run --example spacetime_3d`.

use geoalign::geom::ndbox::grid_partition;
use geoalign::linalg::stats;
use geoalign::partition::{BoxUnitSystem, DisaggregationMatrix, Overlay};
use geoalign::{AggregateVector, GeoAlign, ReferenceData};

/// A deterministic synthetic "case count" field over the unit cube:
/// two disease clusters plus a weak background.
fn disease_intensity(p: &[f64]) -> f64 {
    let cluster = |c: [f64; 3], s: f64| -> f64 {
        let d2: f64 = p.iter().zip(c).map(|(x, y)| (x - y) * (x - y)).sum();
        (-0.5 * d2 / (s * s)).exp()
    };
    0.05 + 8.0 * cluster([0.25, 0.3, 0.4], 0.12) + 5.0 * cluster([0.7, 0.75, 0.6], 0.15)
}

/// A correlated reference ("hospital admissions"): same clusters, slightly
/// different mix, plus its own bump.
fn admissions_intensity(p: &[f64]) -> f64 {
    let cluster = |c: [f64; 3], s: f64| -> f64 {
        let d2: f64 = p.iter().zip(c).map(|(x, y)| (x - y) * (x - y)).sum();
        (-0.5 * d2 / (s * s)).exp()
    };
    0.08 + 6.0 * cluster([0.25, 0.3, 0.4], 0.13)
        + 6.0 * cluster([0.7, 0.75, 0.6], 0.14)
        + 1.5 * cluster([0.5, 0.2, 0.8], 0.1)
}

/// Low-discrepancy points in the unit cube (Halton-ish by golden ratios).
fn quasi_points(n: usize) -> Vec<[f64; 3]> {
    (0..n)
        .map(|k| {
            let k = k as f64;
            [
                (k * 0.8191725133961645) % 1.0,
                (k * 0.6710436067037893) % 1.0,
                (k * 0.5497004779019703) % 1.0,
            ]
        })
        .collect()
}

/// Aggregates weighted sample points into a box system and builds the DM
/// to the target system by point membership.
fn tabulate(
    name: &str,
    weight_of: impl Fn(&[f64]) -> f64,
    points: &[[f64; 3]],
    source: &BoxUnitSystem,
    target: &BoxUnitSystem,
) -> Result<(AggregateVector, Vec<f64>, DisaggregationMatrix), Box<dyn std::error::Error>> {
    let mut src = vec![0.0; source.len()];
    let mut tgt = vec![0.0; target.len()];
    let mut triples = Vec::new();
    for p in points {
        let (Some(i), Some(j)) = (source.locate(p)?, target.locate(p)?) else {
            continue;
        };
        let w = weight_of(p);
        src[i] += w;
        tgt[j] += w;
        triples.push((i, j, w));
    }
    let dm = DisaggregationMatrix::from_triples(name, source.len(), target.len(), triples)?;
    Ok((AggregateVector::new(name, src)?, tgt, dm))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fine cells [0,1]^3 in 6×6×6; coarse cells over a shifted cube so no
    // boundary aligns.
    let fine = BoxUnitSystem::new(
        "fine",
        grid_partition(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &[6, 6, 6])?,
    )?;
    let coarse = BoxUnitSystem::new(
        "coarse",
        grid_partition(&[(0.05, 0.95), (0.05, 0.95), (0.05, 0.95)], &[3, 3, 3])?,
    )?;

    let pts = quasi_points(120_000);
    let (disease_src, disease_truth, _) =
        tabulate("disease", disease_intensity, &pts, &fine, &coarse)?;
    let (adm_src, _, adm_dm) = tabulate("admissions", admissions_intensity, &pts, &fine, &coarse)?;
    let admissions = ReferenceData::new("admissions", adm_src, adm_dm)?;

    // GeoAlign in 3-D: identical call as in 2-D.
    let result = GeoAlign::new().estimate(&disease_src, &[&admissions])?;

    // Baseline: volume weighting via the 3-D overlay's measure matrix.
    let overlay = Overlay::boxes(&fine, &coarse)?;
    let volume_dm = overlay.measure_dm("volume")?;
    let vw = geoalign::areal_weighting(&disease_src, &volume_dm)?;

    let ga_err = stats::nrmse(&result.estimate, &disease_truth)?;
    let vw_err = stats::nrmse(&vw, &disease_truth)?;
    println!("3-D realignment of disease counts (6³ fine cells → shifted 3³ coarse cells)");
    println!("NRMSE — GeoAlign: {ga_err:.4}, volume weighting: {vw_err:.4}");
    println!(
        "total mass: estimate {:.0} vs truth-in-coarse {:.0}",
        result.estimate.iter().sum::<f64>(),
        disease_truth.iter().sum::<f64>()
    );
    assert!(
        ga_err < vw_err,
        "the reference should beat the homogeneity assumption in 3-D too"
    );
    Ok(())
}
