//! The paper's 1-D example (Figure 3): realigning a population histogram
//! from narrow age bins to wide, incompatible ones.
//!
//! The aggregate interpolation problem is dimension-agnostic (paper §2.2,
//! §3.4): here the units are intervals, the "areas" are lengths, and the
//! references are other attributes whose distribution over the
//! intersection bins is known.
//!
//! Run with `cargo run --example histogram_realignment`.

use geoalign::geom::interval::{bins_at, equal_bins};
use geoalign::linalg::stats;
use geoalign::partition::{DisaggregationMatrix, IntervalUnitSystem, Overlay};
use geoalign::{AggregateVector, GeoAlign, ReferenceData};

/// Aggregates a set of (age, weight) records into interval bins.
fn histogram(records: &[(f64, f64)], bins: &IntervalUnitSystem) -> Vec<f64> {
    let mut out = vec![0.0; bins.len()];
    for &(age, w) in records {
        if let Some(i) = bins.locate(age) {
            out[i] += w;
        }
    }
    out
}

/// Builds the disaggregation matrix of a record set between two interval
/// systems (which bin pair each record falls into).
fn dm_of(
    name: &str,
    records: &[(f64, f64)],
    source: &IntervalUnitSystem,
    target: &IntervalUnitSystem,
) -> DisaggregationMatrix {
    let triples =
        records
            .iter()
            .filter_map(|&(age, w)| match (source.locate(age), target.locate(age)) {
                (Some(i), Some(j)) => Some((i, j, w)),
                _ => None,
            });
    DisaggregationMatrix::from_triples(name, source.len(), target.len(), triples).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Source: 18 narrow five-year bins over ages 0..90.
    let narrow = IntervalUnitSystem::new("narrow", equal_bins(0.0, 90.0, 18)?)?;
    // Target: 4 wide bins with boundaries that do NOT align with the
    // narrow ones (0-17, 17-40, 40-67, 67-90).
    let wide = IntervalUnitSystem::new("wide", bins_at(0.0, 90.0, &[17.0, 40.0, 67.0])?)?;

    // A synthetic population of 60,000 individuals with a *lumpy* age
    // pyramid: a smooth base plus baby-boom cohort spikes at specific
    // birth years (deterministic low-discrepancy sequence; no RNG
    // needed). The spikes make ages heterogeneous *within* five-year
    // bins, which is exactly where the homogeneity assumption of length
    // weighting breaks.
    let cohorts = [(18.5, 0.18), (38.5, 0.15), (63.5, 0.20), (71.5, 0.12)];
    let people: Vec<(f64, f64)> = (0..60_000)
        .map(|k| {
            let u = (k as f64 * 0.6180339887498949) % 1.0;
            let v = (k as f64 * 0.7548776662466927) % 1.0;
            // With probability ~0.65 draw from the smooth pyramid, else
            // from a narrow cohort spike.
            let total_spike: f64 = cohorts.iter().map(|c| c.1).sum();
            let age = if v < 1.0 - total_spike {
                90.0 * u.powf(1.35)
            } else {
                let mut t = v - (1.0 - total_spike);
                let mut center = cohorts[0].0;
                for &(c, w) in &cohorts {
                    if t < w {
                        center = c;
                        break;
                    }
                    t -= w;
                }
                (center + 1.6 * (u - 0.5)).clamp(0.0, 90.0)
            };
            (age, 1.0)
        })
        .collect();
    // Reference attributes, each tied to a life stage but jointly covering
    // the full age range (healthcare keeps the old end observable):
    // school enrollment (young) ...
    let enrollment: Vec<(f64, f64)> = people
        .iter()
        .filter(|&&(age, _)| age < 25.0)
        .map(|&(age, _)| (age, 0.9))
        .collect();
    // ... labor-force participation (working ages) ...
    let labor: Vec<(f64, f64)> = people
        .iter()
        .filter(|&&(age, _)| (17.0..67.0).contains(&age))
        .map(|&(age, _)| (age, 0.8))
        .collect();
    // ... and healthcare visits (everyone, weighted toward the old).
    let healthcare: Vec<(f64, f64)> = people
        .iter()
        .map(|&(age, _)| (age, 0.2 + 1.6 * (age / 90.0).powi(2)))
        .collect();

    let pop_narrow = AggregateVector::new("population", histogram(&people, &narrow))?;
    let truth_wide = histogram(&people, &wide);

    let refs = [
        ReferenceData::new(
            "enrollment",
            AggregateVector::new("enrollment", histogram(&enrollment, &narrow))?,
            dm_of("enrollment", &enrollment, &narrow, &wide),
        )?,
        ReferenceData::new(
            "labor",
            AggregateVector::new("labor", histogram(&labor, &narrow))?,
            dm_of("labor", &labor, &narrow, &wide),
        )?,
        ReferenceData::new(
            "healthcare",
            AggregateVector::new("healthcare", histogram(&healthcare, &narrow))?,
            dm_of("healthcare", &healthcare, &narrow, &wide),
        )?,
    ];
    let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
    let result = GeoAlign::new().estimate(&pop_narrow, &ref_slices)?;

    // Baseline: length weighting (the 1-D areal weighting) via the
    // interval overlay's measure matrix.
    let overlay = Overlay::intervals(&narrow, &wide)?;
    let length_dm = overlay.measure_dm("length")?;
    let lw = geoalign::areal_weighting(&pop_narrow, &length_dm)?;

    println!("wide bin          GeoAlign     length-weight      truth");
    for (j, bin) in wide.units().iter().enumerate() {
        println!(
            "[{:>4.0}, {:>4.0})  {:>12.0}  {:>14.0}  {:>9.0}",
            bin.lo(),
            bin.hi(),
            result.estimate[j],
            lw[j],
            truth_wide[j]
        );
    }
    let ga_err = stats::nrmse(&result.estimate, &truth_wide)?;
    let lw_err = stats::nrmse(&lw, &truth_wide)?;
    println!("\nNRMSE — GeoAlign: {ga_err:.4}, length weighting: {lw_err:.4}");
    assert!(
        ga_err < lw_err,
        "multi-reference should beat the homogeneity assumption"
    );
    Ok(())
}
