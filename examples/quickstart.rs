//! Quickstart: the introduction's crime-estimation example, then a small
//! synthetic end-to-end crosswalk with multiple references.
//!
//! Run with `cargo run --example quickstart`.

use geoalign::core::eval::cross_validate;
use geoalign::datagen::{ny_catalog, CatalogSize};
use geoalign::{
    AggregateVector, DasymetricInterpolator, DisaggregationMatrix, GeoAlign, GeoAlignInterpolator,
    Interpolator, ReferenceData,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. The paper's introduction example. A zip code with 25,000 people
    //    straddles counties A and B (10,000 / 15,000). It reported 100
    //    crimes. How many happened in each county?
    // ------------------------------------------------------------------
    let population = ReferenceData::from_dm(
        "population",
        DisaggregationMatrix::from_triples(
            "population",
            1, // one source unit (the zip code)
            2, // two target units (counties A and B)
            [(0, 0, 10_000.0), (0, 1, 15_000.0)],
        )?,
    )?;
    let crimes = AggregateVector::new("crimes", vec![100.0])?;

    let result = GeoAlign::new().estimate(&crimes, &[&population])?;
    println!("crimes in county A: {:.0}", result.estimate[0]); // 40
    println!("crimes in county B: {:.0}", result.estimate[1]); // 60
    assert_eq!(result.estimate.iter().sum::<f64>(), 100.0); // volume preserved

    // ------------------------------------------------------------------
    // 2. A realistic multi-reference crosswalk: generate a small synthetic
    //    New York State (zip-like and county-like unit systems plus eight
    //    attribute datasets) and cross-validate GeoAlign against a
    //    dasymetric baseline.
    // ------------------------------------------------------------------
    let synthetic = ny_catalog(CatalogSize::small(), 42)?;
    println!(
        "\nsynthetic {}: {} source units, {} target units, {} datasets",
        synthetic.universe.name,
        synthetic.universe.n_source(),
        synthetic.universe.n_target(),
        synthetic.datasets.len()
    );
    let catalog = geoalign::to_eval_catalog(&synthetic)?;

    let geoalign = GeoAlignInterpolator::new();
    let dasymetric = DasymetricInterpolator::new("Population");
    let methods: Vec<&dyn Interpolator> = vec![&geoalign, &dasymetric];
    let report = cross_validate(&catalog, &methods)?;
    println!("\n{}", report.to_table());

    let ga_max = report.method_max_nrmse("GeoAlign").unwrap();
    println!("GeoAlign worst-case NRMSE across all eight datasets: {ga_max:.4}");
    Ok(())
}
