//! The paper's motivating example (Figures 1 and 4): joining a steam
//! consumption table reported by zip code with a per-capita income table
//! reported by county.
//!
//! The steam table cannot be joined as-is — one zip code may intersect
//! several counties. GeoAlign realigns the steam aggregates to counties
//! using two reference attributes (population and accidents, as in
//! Figure 4), after which the join is a plain key lookup.
//!
//! Run with `cargo run --example ny_steam_consumption`.

use geoalign::datagen::TownModel;
use geoalign::geom::{Aabb, Point2, VoronoiDiagram};
use geoalign::linalg::stats;
use geoalign::partition::{aggregate_points, OutsidePolicy, PolygonUnitSystem, WeightedPoint};
use geoalign::{GeoAlign, ReferenceData};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);

    // --- A miniature New York State: 60 zip codes over 8 counties. ---
    let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(8.0, 8.0));
    let towns = TownModel::generate(bounds, 25, 1.05, 2_000.0, 0.01, 0.02, &mut rng);
    let zips = PolygonUnitSystem::from_voronoi(
        "zip",
        VoronoiDiagram::build(towns.sample(60, 0.7, 4.0, 0.3, &mut rng), bounds)?,
    )?;
    let counties = PolygonUnitSystem::from_voronoi(
        "county",
        VoronoiDiagram::build(towns.sample(8, 0.7, 6.0, 0.3, &mut rng), bounds)?,
    )?;

    // --- Reference attributes with known crosswalk files (Figure 4):
    //     population and accidents. ---
    let pop_pts: Vec<WeightedPoint> = towns
        .sample(40_000, 1.0, 1.0, 0.02, &mut rng)
        .into_iter()
        .map(WeightedPoint::unit)
        .collect();
    let pop = aggregate_points(
        "population",
        &pop_pts,
        &zips,
        &counties,
        OutsidePolicy::Skip,
    )?;
    let population = ReferenceData::new("population", pop.source.clone(), pop.dm)?;

    let acc_pts: Vec<WeightedPoint> = towns
        .sample(4_000, 0.85, 2.0, 0.08, &mut rng)
        .into_iter()
        .map(WeightedPoint::unit)
        .collect();
    let acc = aggregate_points("accidents", &acc_pts, &zips, &counties, OutsidePolicy::Skip)?;
    let accidents = ReferenceData::new("accidents", acc.source, acc.dm)?;

    // --- The objective: steam consumption, reported only by zip code.
    //     (Ground truth at the county level is kept for validation.) ---
    let steam_pts: Vec<WeightedPoint> = towns
        .sample(12_000, 1.1, 0.9, 0.01, &mut rng)
        .into_iter()
        .map(|p| WeightedPoint {
            pos: p,
            weight: 0.5,
        }) // mg per meter read
        .collect();
    let steam = aggregate_points("steam", &steam_pts, &zips, &counties, OutsidePolicy::Skip)?;

    // --- Per-capita income, reported by county (the other table). ---
    let income: Vec<f64> = pop
        .target
        .values()
        .iter()
        .map(|&county_pop| 45_000.0 + 30_000.0 * county_pop / pop.target.total())
        .collect();

    // --- Crosswalk the steam table to counties and join. ---
    let result = GeoAlign::new().estimate(&steam.source, &[&population, &accidents])?;
    println!(
        "learned weights: population={:.3}, accidents={:.3}",
        result.weights[0], result.weights[1]
    );
    println!(
        "\n{:>7}  {:>14}  {:>14}  {:>12}",
        "county", "steam est (mg)", "steam true (mg)", "income ($)"
    );
    for (j, ((est, tru), inc)) in result
        .estimate
        .iter()
        .zip(steam.target.values())
        .zip(&income)
        .enumerate()
    {
        println!("{j:>7}  {est:>14.1}  {tru:>14.1}  {inc:>12.0}");
    }
    let nrmse = stats::nrmse(&result.estimate, steam.target.values())?;
    println!("\ncrosswalk NRMSE vs ground truth: {nrmse:.4}");

    // The joined table enables the sociologist's study: correlation of
    // steam consumption with income across counties.
    let r = stats::pearson(&result.estimate, &income)?;
    println!("correlation(steam, income) on the joined table: {r:.3}");
    let r_true = stats::pearson(steam.target.values(), &income)?;
    println!("correlation using the (unavailable) true steam table: {r_true:.3}");
    Ok(())
}
