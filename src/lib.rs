//! # GeoAlign
//!
//! A from-scratch Rust reproduction of **"GeoAlign: Interpolating
//! Aggregates over Unaligned Partitions"** (EDBT 2018): a multi-reference
//! crosswalk algorithm that realigns an attribute's aggregates from one
//! set of data-collection units (e.g. zip codes) to a spatially
//! incongruent set (e.g. counties) by learning which convex combination of
//! *reference* attributes best matches the objective's distribution.
//!
//! The workspace layers:
//!
//! * [`geom`] — computational geometry (polygons, clipping, Voronoi,
//!   spatial indexes, n-D boxes);
//! * [`linalg`] — dense/sparse linear algebra and the simplex-constrained
//!   least-squares solvers behind Eq. 15;
//! * [`partition`] — unit systems, aggregate vectors, disaggregation
//!   matrices, overlay and point-crosswalk aggregation;
//! * [`datagen`] — synthetic universes and dataset catalogs reproducing
//!   the paper's evaluation data;
//! * [`core`] — the GeoAlign algorithm, baselines and evaluation toolkit.
//!
//! The most common entry points are re-exported at the crate root; see the
//! examples directory for end-to-end walkthroughs.

#![warn(missing_docs)]

pub use geoalign_core as core;
pub use geoalign_datagen as datagen;
pub use geoalign_geom as geom;
pub use geoalign_linalg as linalg;
pub use geoalign_partition as partition;

pub use geoalign_core::{
    areal_weighting, dasymetric, regression_combiner, AlignedColumn, ArealWeightingInterpolator,
    CoreError, DasymetricInterpolator, GeoAlign, GeoAlignConfig, GeoAlignInterpolator,
    GeoAlignResult, IntegrationPipeline, Interpolator, JoinedTable, ReferenceData,
    RegressionInterpolator,
};
pub use geoalign_partition::{AggregateVector, DisaggregationMatrix};

use geoalign_core::eval::{Catalog, Dataset};
use geoalign_datagen::SyntheticCatalog;

/// Converts a synthetic catalog from [`datagen`] into the evaluation
/// [`Catalog`] consumed by [`core::eval`]'s harnesses.
pub fn to_eval_catalog(synthetic: &SyntheticCatalog) -> Result<Catalog, CoreError> {
    let mut datasets = Vec::with_capacity(synthetic.datasets.len());
    for d in &synthetic.datasets {
        let reference = ReferenceData::new(d.name.clone(), d.source.clone(), d.dm.clone())?;
        datasets.push(Dataset::with_truth(reference, d.target_truth.clone())?);
    }
    Catalog::new(
        synthetic.universe.name.clone(),
        datasets,
        synthetic.universe.area_dm.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_datagen::CatalogSize;

    #[test]
    fn synthetic_catalog_converts_to_eval_catalog() {
        let synth = geoalign_datagen::ny_catalog(
            CatalogSize {
                n_source: 30,
                n_target: 4,
                base_points: 1500,
            },
            5,
        )
        .unwrap();
        let cat = to_eval_catalog(&synth).unwrap();
        assert_eq!(cat.len(), 8);
        assert_eq!(cat.universe(), "New York State");
        assert_eq!(cat.n_source(), synth.universe.n_source());
    }
}
